//! The sharded campaign engine: multi-threaded fault injection with a
//! deterministic, fault-list-ordered merge.
//!
//! Every fault in a campaign is an independent golden-vs-faulty
//! co-simulation, which makes the campaign embarrassingly parallel — but
//! IEC 61508 evidence must be *reproducible*: the measured S/DD/DU split,
//! the coverage collection and any early-stop decision have to come out the
//! same whether the campaign ran on one laptop core or a 64-way server.
//!
//! [`Campaign`] delivers both. Worker threads claim fixed-size chunks of
//! the fault list and simulate them against a shared golden trace, each on
//! its own [`Simulator`] (cloned once via [`Simulator::clone_fresh`], reset
//! — not re-levelized — between faults). Finished chunks stream back over a
//! channel and are committed **strictly in fault-list order**; coverage
//! recording and the early-stop check only ever run on committed, in-order
//! outcomes. The result is therefore a pure function of `(environment,
//! fault list)` — bit-identical for any thread count, chunk size or
//! scheduling seed, and `CampaignResult` is `Eq` so tests assert exactly
//! that.

use crate::accel::{simulate_dispatch, ExecContext, FaultMetrics};
use crate::collapse::{CollapsePlan, FaultCollapser};
use crate::env::Environment;
use crate::faultlist::Fault;
use crate::inject::{CampaignResult, FaultOutcome, Outcome};
use crate::monitors::CoverageCollection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use socfmea_core::CampaignStatsSummary;
use socfmea_sim::Simulator;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// When a campaign may stop before exhausting its fault list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarlyStop {
    /// Stop once the [`CoverageCollection`] saturates: SENS at 100 % over
    /// the targeted zones, at least one observed deviation, and — when
    /// `expect_diagnostics` — at least one alarm event.
    ///
    /// The check runs on the in-order committed prefix of the fault list,
    /// so the stopping point is the same for any thread count.
    CoverageComplete {
        /// Require at least one DIAG event before stopping (set when the
        /// design has diagnostic alarms).
        expect_diagnostics: bool,
    },
}

/// Live progress counters of a running campaign, updated by the worker
/// threads and safe to poll from any other thread.
///
/// Obtain the shared handle with [`Campaign::stats`] *before* calling
/// [`Campaign::run`]; a monitor thread can then report progress while the
/// campaign executes. Counters advance as faults are *simulated*, so under
/// early stop [`faults_done`](Self::faults_done) may exceed the number of
/// outcomes finally committed to the result.
#[derive(Debug)]
pub struct CampaignStats {
    scheduled: AtomicUsize,
    threads: AtomicUsize,
    done: AtomicUsize,
    /// Faults answered from an equivalent representative's outcome instead
    /// of a simulation (collapsed campaigns only; not counted in `done`).
    collapsed: AtomicUsize,
    no_effect: AtomicUsize,
    safe_detected: AtomicUsize,
    dangerous_detected: AtomicUsize,
    dangerous_undetected: AtomicUsize,
    /// Cycles actually evaluated across all faults so far.
    cycles_simulated: AtomicU64,
    /// Cycles answered from the golden trace without evaluation (warm-start
    /// prefixes and post-convergence suffixes; 0 on the baseline path).
    cycles_skipped: AtomicU64,
    /// Total wall-clock nanoseconds spent inside per-fault simulation.
    sim_nanos: AtomicU64,
    /// Nanoseconds from `anchor` to run start / end; `u64::MAX` = not yet.
    started_nanos: AtomicU64,
    finished_nanos: AtomicU64,
    anchor: Instant,
}

impl CampaignStats {
    fn new() -> CampaignStats {
        CampaignStats {
            scheduled: AtomicUsize::new(0),
            threads: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            collapsed: AtomicUsize::new(0),
            no_effect: AtomicUsize::new(0),
            safe_detected: AtomicUsize::new(0),
            dangerous_detected: AtomicUsize::new(0),
            dangerous_undetected: AtomicUsize::new(0),
            cycles_simulated: AtomicU64::new(0),
            cycles_skipped: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            started_nanos: AtomicU64::new(u64::MAX),
            finished_nanos: AtomicU64::new(u64::MAX),
            anchor: Instant::now(),
        }
    }

    fn begin(&self, scheduled: usize, threads: usize) {
        self.scheduled.store(scheduled, Ordering::Relaxed);
        self.threads.store(threads, Ordering::Relaxed);
        self.started_nanos
            .store(self.anchor.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn finish(&self) {
        self.finished_nanos
            .store(self.anchor.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn record(&self, outcome: Outcome, metrics: &FaultMetrics, nanos: u64) {
        match outcome {
            Outcome::NoEffect => &self.no_effect,
            Outcome::SafeDetected => &self.safe_detected,
            Outcome::DangerousDetected => &self.dangerous_detected,
            Outcome::DangerousUndetected => &self.dangerous_undetected,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.cycles_simulated
            .fetch_add(metrics.simulated, Ordering::Relaxed);
        self.cycles_skipped
            .fetch_add(metrics.skipped, Ordering::Relaxed);
        self.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dictionary-annotated outcome: the per-class tallies
    /// advance (the fault *is* classified), but `done` does not — nothing
    /// was simulated.
    fn record_annotated(&self, outcome: Outcome) {
        match outcome {
            Outcome::NoEffect => &self.no_effect,
            Outcome::SafeDetected => &self.safe_detected,
            Outcome::DangerousDetected => &self.dangerous_detected,
            Outcome::DangerousUndetected => &self.dangerous_undetected,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.collapsed.fetch_add(1, Ordering::Relaxed);
    }

    /// Faults scheduled in the campaign (0 until the run starts).
    pub fn scheduled(&self) -> usize {
        self.scheduled.load(Ordering::Relaxed)
    }

    /// Worker threads of the run (0 until the run starts).
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Faults simulated so far.
    pub fn faults_done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Faults classified from an equivalent representative's outcome
    /// instead of a simulation of their own (0 unless
    /// [`Campaign::collapse`] is on).
    pub fn faults_collapsed(&self) -> usize {
        self.collapsed.load(Ordering::Relaxed)
    }

    /// Classified-to-simulated ratio so far:
    /// `(done + collapsed) / done`, or 1.0 before anything ran. A ratio of
    /// 2.0 means every simulation answered two faults on average.
    pub fn collapse_ratio(&self) -> f64 {
        let done = self.faults_done();
        if done == 0 {
            return 1.0;
        }
        (done + self.faults_collapsed()) as f64 / done as f64
    }

    /// Per-class tallies so far: `(no_effect, safe_detected, dd, du)`.
    pub fn outcome_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.no_effect.load(Ordering::Relaxed),
            self.safe_detected.load(Ordering::Relaxed),
            self.dangerous_detected.load(Ordering::Relaxed),
            self.dangerous_undetected.load(Ordering::Relaxed),
        )
    }

    /// Cycles actually evaluated so far (full or sparse).
    pub fn cycles_simulated(&self) -> u64 {
        self.cycles_simulated.load(Ordering::Relaxed)
    }

    /// Cycles answered from the golden trace without evaluation: warm-start
    /// prefixes and post-convergence suffixes. Always 0 for baseline runs.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped.load(Ordering::Relaxed)
    }

    /// Mean wall-clock time per simulated fault so far.
    pub fn mean_fault_time(&self) -> Duration {
        let done = self.faults_done() as u64;
        if done == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sim_nanos.load(Ordering::Relaxed) / done)
    }

    /// Wall-clock time since the run started (frozen once it finished;
    /// zero before it started).
    pub fn elapsed(&self) -> Duration {
        let started = self.started_nanos.load(Ordering::Relaxed);
        if started == u64::MAX {
            return Duration::ZERO;
        }
        let end = match self.finished_nanos.load(Ordering::Relaxed) {
            u64::MAX => self.anchor.elapsed().as_nanos() as u64,
            done => done,
        };
        Duration::from_nanos(end.saturating_sub(started))
    }

    /// Current throughput in faults per second.
    pub fn faults_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.faults_done() as f64 / secs
    }

    /// True once [`Campaign::run`] has returned.
    pub fn is_finished(&self) -> bool {
        self.finished_nanos.load(Ordering::Relaxed) != u64::MAX
    }

    /// Snapshot as the summary a [`socfmea_core::ValidationReport`] carries.
    pub fn summary(&self) -> CampaignStatsSummary {
        let (no_effect, safe_detected, dangerous_detected, dangerous_undetected) =
            self.outcome_counts();
        CampaignStatsSummary {
            injections: self.faults_done(),
            scheduled: self.scheduled(),
            no_effect,
            safe_detected,
            dangerous_detected,
            dangerous_undetected,
            threads: self.threads(),
            elapsed: self.elapsed(),
            faults_per_sec: self.faults_per_sec(),
            cycles_simulated: self.cycles_simulated(),
            cycles_skipped: self.cycles_skipped(),
            mean_fault_time: self.mean_fault_time(),
            faults_collapsed: self.faults_collapsed(),
            collapse_ratio: self.collapse_ratio(),
        }
    }
}

/// A configurable fault-injection campaign: shard the fault list over
/// worker threads, merge deterministically.
///
/// The builder methods configure *how* the campaign executes; none of them
/// change *what* it computes. [`run`](Self::run) returns the same
/// [`CampaignResult`] for every combination of
/// [`threads`](Self::threads), [`chunk`](Self::chunk) and
/// [`seed`](Self::seed).
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_faultsim::{
///     generate_fault_list, Campaign, EnvironmentBuilder, FaultListConfig,
///     OperationalProfile,
/// };
/// use socfmea_rtl::RtlBuilder;
/// use socfmea_sim::{assign_bus, Workload};
///
/// // a parity-protected 4-bit register
/// let mut r = RtlBuilder::new("d");
/// let d = r.input_word("d", 4);
/// let q = r.register("data", &d, None, None);
/// let pin = r.parity(&d);
/// let pq = r.register_bit("par", pin, None, None);
/// let pout = r.parity(&q);
/// let perr = r.xor2_bit(pout, pq);
/// r.output_word("o", &q);
/// r.output("alarm_parity", perr);
/// let nl = r.finish()?;
///
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let mut w = Workload::new("count");
/// let dn: Vec<_> = (0..4).map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap()).collect();
/// for c in 0..12 {
///     let mut v = Vec::new();
///     assign_bus(&mut v, &dn, c % 16);
///     w.push_cycle(v);
/// }
/// let env = EnvironmentBuilder::new(&nl, &zones, &w).alarms_matching("alarm_").build();
/// let profile = OperationalProfile::collect(&env);
/// let faults = generate_fault_list(&env, &profile, &FaultListConfig::default());
///
/// let campaign = Campaign::new(&env, &faults).threads(2).chunk(4);
/// let stats = campaign.stats(); // pollable from a monitor thread
/// let sharded = campaign.run();
///
/// // bit-identical to the serial run, by construction
/// let serial = Campaign::new(&env, &faults).threads(1).run();
/// assert_eq!(sharded, serial);
/// assert_eq!(stats.faults_done(), faults.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Campaign<'a> {
    env: &'a Environment<'a>,
    faults: &'a [Fault],
    threads: usize,
    seed: u64,
    chunk: usize,
    early_stop: Option<EarlyStop>,
    accelerated: bool,
    checkpoint_interval: usize,
    collapse: bool,
    stats: Arc<CampaignStats>,
}

impl<'a> Campaign<'a> {
    /// Default chunk size (faults claimed per worker grab).
    pub const DEFAULT_CHUNK: usize = 8;

    /// Default checkpoint interval for [`accelerated`](Self::accelerated)
    /// campaigns.
    pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 16;

    /// Prepares a campaign over `faults` in `env`, initially single-threaded.
    pub fn new(env: &'a Environment<'a>, faults: &'a [Fault]) -> Campaign<'a> {
        Campaign {
            env,
            faults,
            threads: 1,
            seed: 0,
            chunk: Self::DEFAULT_CHUNK,
            early_stop: None,
            accelerated: false,
            checkpoint_interval: Self::DEFAULT_CHECKPOINT_INTERVAL,
            collapse: false,
            stats: Arc::new(CampaignStats::new()),
        }
    }

    /// Sets the worker-thread count (0 is treated as 1). The result is
    /// independent of this setting; only wall-clock time changes.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the scheduling seed. It shuffles the order in which workers
    /// *claim* chunks — useful for exercising the merge under adversarial
    /// completion orders — and provably does not affect the result.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the chunk size: how many consecutive faults a worker claims at
    /// a time (0 is treated as 1). Smaller chunks balance load better;
    /// larger chunks lower synchronisation traffic.
    pub fn chunk(mut self, faults_per_chunk: usize) -> Self {
        self.chunk = faults_per_chunk.max(1);
        self
    }

    /// Enables early exit; see [`EarlyStop`]. Outcomes past the
    /// (deterministic) stopping point are discarded.
    pub fn early_stop(mut self, policy: EarlyStop) -> Self {
        self.early_stop = Some(policy);
        self
    }

    /// Opts into the checkpointed incremental engine (`socfmea-accel`):
    /// golden-trace recording with warm-start checkpoints, divergence-set
    /// propagation for state-override faults, and convergence early exit.
    ///
    /// Like every other builder setting, this changes only *how* the
    /// campaign executes: the [`CampaignResult`] is bit-identical to a
    /// baseline run. The per-cycle work saved shows up in
    /// [`CampaignStats::cycles_skipped`].
    pub fn accelerated(mut self, on: bool) -> Self {
        self.accelerated = on;
        self
    }

    /// Sets the accelerated engine's checkpoint interval (0 is treated
    /// as 1): smaller intervals shorten warm-start replays at the cost of
    /// checkpoint memory. No effect unless [`accelerated`](Self::accelerated)
    /// is on; provably does not affect the result.
    pub fn checkpoint_interval(mut self, cycles: usize) -> Self {
        self.checkpoint_interval = cycles.max(1);
        self
    }

    /// Opts into structural fault collapsing with dictionary
    /// back-annotation: equivalent stuck-at faults (per
    /// [`FaultCollapser`]) share one simulation, and the representative's
    /// outcome is copied onto every class member.
    ///
    /// Like every other builder setting, this changes only *how* the
    /// campaign executes: the [`CampaignResult`] — per-fault
    /// classifications, coverage, DC/SFF, per-zone attribution over the
    /// *full uncollapsed* list — is bit-identical to an uncollapsed run,
    /// and it composes freely with [`accelerated`](Self::accelerated) and
    /// any thread count. The simulations saved show up in
    /// [`CampaignStats::faults_collapsed`] and
    /// [`CampaignStats::collapse_ratio`].
    pub fn collapse(mut self, on: bool) -> Self {
        self.collapse = on;
        self
    }

    /// The live progress counters of this campaign. Clone the `Arc` out
    /// before [`run`](Self::run) to poll from another thread.
    pub fn stats(&self) -> Arc<CampaignStats> {
        Arc::clone(&self.stats)
    }

    /// Executes the campaign and returns its (thread-count-independent)
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the netlist cannot be levelized (prevented by
    /// construction for `RtlBuilder` designs).
    pub fn run(self) -> CampaignResult {
        let ctx = ExecContext::prepare(
            self.env,
            self.faults,
            self.accelerated,
            self.checkpoint_interval,
        );
        let plan = (self.collapse && !self.faults.is_empty()).then(|| {
            CollapsePlan::build(
                self.faults,
                self.env.workload.len(),
                &FaultCollapser::build(self.env),
                |cycle, net| ctx.golden_value(cycle, net),
            )
        });
        // The simulation schedule: representatives only under collapsing,
        // every fault otherwise. Outcomes are still committed for the full
        // list, in fault-list order, by `commit_expanded`.
        let order: Vec<usize> = match &plan {
            Some(p) => p.sim_order.clone(),
            None => (0..self.faults.len()).collect(),
        };
        let mut coverage = CoverageCollection::new(ctx.injected_zones().iter().copied());
        self.stats.begin(self.faults.len(), self.threads);
        let outcomes = if self.threads == 1 {
            self.run_serial(&ctx, plan.as_ref(), &order, &mut coverage)
        } else {
            self.run_sharded(&ctx, plan.as_ref(), &order, &mut coverage)
        };
        self.stats.finish();
        CampaignResult { outcomes, coverage }
    }

    /// Commits one in-order outcome to the coverage collection; true when
    /// the early-stop policy says the campaign is done.
    fn commit(&self, coverage: &mut CoverageCollection, fo: &FaultOutcome) -> bool {
        coverage.record(
            self.faults[fo.fault_index].zone,
            fo.sens_triggered,
            &fo.deviated_zones,
            fo.alarm_cycle,
            fo.first_mismatch,
        );
        match self.early_stop {
            Some(EarlyStop::CoverageComplete { expect_diagnostics }) => {
                coverage.is_complete(expect_diagnostics)
            }
            None => false,
        }
    }

    /// Commits a just-simulated representative, then expands the fault
    /// dictionary: every following fault whose representative is already
    /// committed receives a clone of that outcome (re-indexed to itself)
    /// until the next representative is due. Keeps outcomes committed
    /// strictly in fault-list order, so coverage evolution — and with it
    /// any early-stop point — is identical to an uncollapsed run.
    fn commit_expanded(
        &self,
        plan: Option<&CollapsePlan>,
        coverage: &mut CoverageCollection,
        outcomes: &mut Vec<FaultOutcome>,
        fo: FaultOutcome,
    ) -> bool {
        debug_assert_eq!(fo.fault_index, outcomes.len(), "out-of-order commit");
        let mut stop = self.commit(coverage, &fo);
        outcomes.push(fo);
        if let Some(plan) = plan {
            while !stop
                && outcomes.len() < plan.rep_of.len()
                && plan.rep_of[outcomes.len()] != outcomes.len()
            {
                let next = outcomes.len();
                let mut annotated = outcomes[plan.rep_of[next]].clone();
                annotated.fault_index = next;
                self.stats.record_annotated(annotated.outcome);
                stop = self.commit(coverage, &annotated);
                outcomes.push(annotated);
            }
        }
        stop
    }

    fn run_serial(
        &self,
        ctx: &ExecContext,
        plan: Option<&CollapsePlan>,
        order: &[usize],
        coverage: &mut CoverageCollection,
    ) -> Vec<FaultOutcome> {
        let mut sim = Simulator::new(self.env.netlist).expect("levelizable netlist");
        let mut sparse = ctx.make_sparse(self.env.netlist);
        let mut outcomes = Vec::with_capacity(self.faults.len());
        for &fi in order {
            let t0 = Instant::now();
            let (fo, metrics) = simulate_dispatch(
                self.env,
                ctx,
                &mut sim,
                sparse.as_mut(),
                fi,
                &self.faults[fi],
            );
            self.stats
                .record(fo.outcome, &metrics, t0.elapsed().as_nanos() as u64);
            if self.commit_expanded(plan, coverage, &mut outcomes, fo) {
                break;
            }
        }
        outcomes
    }

    fn run_sharded(
        &self,
        ctx: &ExecContext,
        plan: Option<&CollapsePlan>,
        order: &[usize],
        coverage: &mut CoverageCollection,
    ) -> Vec<FaultOutcome> {
        let n = order.len();
        let chunk = self.chunk;
        let n_chunks = n.div_ceil(chunk);
        // The seed shuffles only the order in which workers claim chunks.
        let mut claim_order: Vec<usize> = (0..n_chunks).collect();
        claim_order.shuffle(&mut StdRng::seed_from_u64(self.seed));

        let next_claim = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let base = Simulator::new(self.env.netlist).expect("levelizable netlist");
        let (tx, rx) = mpsc::channel::<(usize, Vec<FaultOutcome>)>();
        let mut outcomes = Vec::with_capacity(n);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n_chunks.max(1)) {
                let tx = tx.clone();
                let (base, claim_order, next_claim, stop) =
                    (&base, &claim_order, &next_claim, &stop);
                scope.spawn(move || {
                    let mut sim = base.clone_fresh();
                    let mut sparse = ctx.make_sparse(self.env.netlist);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let claim = next_claim.fetch_add(1, Ordering::Relaxed);
                        if claim >= claim_order.len() {
                            return;
                        }
                        let ci = claim_order[claim];
                        let lo = ci * chunk;
                        let hi = (lo + chunk).min(n);
                        let mut chunk_out = Vec::with_capacity(hi - lo);
                        for &fi in &order[lo..hi] {
                            // A set stop flag means the result is already
                            // fully committed; this chunk can't be needed.
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let t0 = Instant::now();
                            let (fo, metrics) = simulate_dispatch(
                                self.env,
                                ctx,
                                &mut sim,
                                sparse.as_mut(),
                                fi,
                                &self.faults[fi],
                            );
                            self.stats
                                .record(fo.outcome, &metrics, t0.elapsed().as_nanos() as u64);
                            chunk_out.push(fo);
                        }
                        if tx.send((ci, chunk_out)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);

            // Deterministic merge: buffer out-of-order chunks, commit
            // strictly in fault-list order.
            let mut pending: BTreeMap<usize, Vec<FaultOutcome>> = BTreeMap::new();
            let mut next_commit = 0usize;
            'merge: for (ci, chunk_out) in rx.iter() {
                pending.insert(ci, chunk_out);
                while let Some(chunk_out) = pending.remove(&next_commit) {
                    next_commit += 1;
                    for fo in chunk_out {
                        if self.commit_expanded(plan, coverage, &mut outcomes, fo) {
                            stop.store(true, Ordering::Relaxed);
                            break 'merge;
                        }
                    }
                }
            }
            // Receiver drops here; workers still sending see a closed
            // channel and exit. The scope joins them before returning.
        });
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvironmentBuilder;
    use crate::faultlist::{generate_fault_list, FaultListConfig};
    use crate::inject::run_campaign;
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::{assign_bus, Workload};

    fn protected_design() -> socfmea_netlist::Netlist {
        let mut r = RtlBuilder::new("prot");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 4);
        r.push_block("regs");
        let q = r.register("data", &d, None, None);
        let pin = r.parity(&d);
        let pq = r.register_bit("par", pin, None, None);
        r.pop_block();
        let pout = r.parity(&q);
        let perr = r.xor2_bit(pout, pq);
        r.output_word("o", &q);
        r.output("alarm_parity", perr);
        r.finish().unwrap()
    }

    fn workload(nl: &socfmea_netlist::Netlist, cycles: u64) -> Workload {
        let d: Vec<_> = (0..4)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..cycles {
            let mut v = Vec::new();
            assign_bus(&mut v, &d, c % 16);
            w.push_cycle(v);
        }
        w
    }

    struct Fixture {
        nl: socfmea_netlist::Netlist,
        zones: socfmea_core::ZoneSet,
        w: Workload,
    }

    impl Fixture {
        fn new(cycles: u64) -> Fixture {
            let nl = protected_design();
            let zones = extract_zones(&nl, &ExtractConfig::default());
            let w = workload(&nl, cycles);
            Fixture { nl, zones, w }
        }

        fn env(&self) -> Environment<'_> {
            EnvironmentBuilder::new(&self.nl, &self.zones, &self.w)
                .alarms_matching("alarm_")
                .build()
        }
    }

    fn fault_list(env: &Environment<'_>) -> Vec<Fault> {
        let profile = crate::profile::OperationalProfile::collect(env);
        generate_fault_list(
            env,
            &profile,
            &FaultListConfig {
                seed: 99,
                ..FaultListConfig::default()
            },
        )
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let fx = Fixture::new(12);
        let env = fx.env();
        let faults = fault_list(&env);
        assert!(
            faults.len() > 8,
            "need a non-trivial list, got {}",
            faults.len()
        );
        let serial = Campaign::new(&env, &faults).threads(1).run();
        for threads in [2, 3, 4, 7] {
            let sharded = Campaign::new(&env, &faults).threads(threads).chunk(3).run();
            assert_eq!(serial, sharded, "divergence at {threads} threads");
        }
    }

    #[test]
    fn scheduling_seed_and_chunk_size_do_not_change_the_result() {
        let fx = Fixture::new(10);
        let env = fx.env();
        let faults = fault_list(&env);
        let reference = Campaign::new(&env, &faults).threads(2).run();
        for (seed, chunk) in [(1, 1), (42, 2), (0xdead_beef, 5), (7, 64)] {
            let got = Campaign::new(&env, &faults)
                .threads(4)
                .seed(seed)
                .chunk(chunk)
                .run();
            assert_eq!(reference, got, "divergence at seed {seed} chunk {chunk}");
        }
    }

    #[test]
    fn run_campaign_wrapper_matches_builder() {
        let fx = Fixture::new(10);
        let env = fx.env();
        let faults = fault_list(&env);
        assert_eq!(
            run_campaign(&env, &faults),
            Campaign::new(&env, &faults).threads(1).run()
        );
    }

    #[test]
    fn stats_count_every_fault_and_throughput_is_positive() {
        let fx = Fixture::new(10);
        let env = fx.env();
        let faults = fault_list(&env);
        let campaign = Campaign::new(&env, &faults).threads(2);
        let stats = campaign.stats();
        assert_eq!(stats.faults_done(), 0);
        assert!(!stats.is_finished());
        let result = campaign.run();
        assert!(stats.is_finished());
        assert_eq!(stats.faults_done(), faults.len());
        assert_eq!(stats.scheduled(), faults.len());
        assert_eq!(stats.threads(), 2);
        assert_eq!(stats.outcome_counts(), result.outcome_counts());
        assert!(stats.faults_per_sec() > 0.0);
        let summary = stats.summary();
        assert_eq!(summary.injections, faults.len());
        assert_eq!(summary.threads, 2);
    }

    #[test]
    fn early_stop_truncates_identically_across_thread_counts() {
        let fx = Fixture::new(12);
        let env = fx.env();
        // A crafted list whose coverage saturates mid-list: the `par` zone
        // is only touched by fault #5, so SENS hits 100 % there and the
        // campaign must stop with exactly 6 outcomes committed.
        let data = fx.zones.zone_by_name("regs/data").unwrap();
        let par = fx.zones.zone_by_name("regs/par").unwrap();
        let socfmea_core::ZoneKind::RegisterGroup { dffs: data_dffs } = &data.kind else {
            panic!("register zone expected");
        };
        let socfmea_core::ZoneKind::RegisterGroup { dffs: par_dffs } = &par.kind else {
            panic!("register zone expected");
        };
        let flip = |dff, zone, cycle| Fault {
            kind: crate::faultlist::FaultKind::BitFlip { dff },
            zone: Some(zone),
            inject_cycle: cycle,
            label: "crafted flip".into(),
        };
        let mut faults: Vec<Fault> = (0..5)
            .map(|i| flip(data_dffs[i % data_dffs.len()], data.id, 1 + i))
            .collect();
        faults.push(flip(par_dffs[0], par.id, 2));
        faults.extend((0..6).map(|i| flip(data_dffs[i % data_dffs.len()], data.id, 2 + i)));
        let policy = EarlyStop::CoverageComplete {
            expect_diagnostics: true,
        };
        let serial = Campaign::new(&env, &faults)
            .threads(1)
            .early_stop(policy)
            .run();
        let full = Campaign::new(&env, &faults).threads(1).run();
        assert!(
            serial.outcomes.len() < full.outcomes.len(),
            "early stop never triggered ({} faults) — fixture too small?",
            full.outcomes.len()
        );
        assert!(serial.coverage.is_complete(true));
        for threads in [2, 4] {
            let sharded = Campaign::new(&env, &faults)
                .threads(threads)
                .chunk(2)
                .early_stop(policy)
                .run();
            assert_eq!(
                serial, sharded,
                "early-stop divergence at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_fault_list_yields_empty_result_on_any_thread_count() {
        let fx = Fixture::new(6);
        let env = fx.env();
        for threads in [1, 4] {
            let result = Campaign::new(&env, &[]).threads(threads).run();
            assert!(result.outcomes.is_empty());
            assert!(result.coverage.is_complete(false));
        }
    }

    #[test]
    fn degenerate_builder_settings_are_clamped() {
        let fx = Fixture::new(8);
        let env = fx.env();
        let faults = fault_list(&env);
        let reference = run_campaign(&env, &faults);
        let clamped = Campaign::new(&env, &faults).threads(0).chunk(0).run();
        assert_eq!(reference, clamped);
    }

    /// Every stuck-at on every driven, non-constant net — the densest list
    /// the collapser can chew on.
    fn exhaustive_stuck_list(nl: &socfmea_netlist::Netlist) -> Vec<Fault> {
        use socfmea_netlist::{Driver, Logic, NetId};
        let mut faults = Vec::new();
        for (i, net) in nl.nets().iter().enumerate() {
            if matches!(net.driver, Driver::None | Driver::Const(_)) {
                continue;
            }
            for value in [Logic::Zero, Logic::One] {
                faults.push(Fault {
                    kind: crate::faultlist::FaultKind::StuckAt {
                        net: NetId::from_index(i),
                        value,
                    },
                    zone: None,
                    inject_cycle: 0,
                    label: format!("exhaustive {}-sa{value}", net.name),
                });
            }
        }
        faults
    }

    #[test]
    fn collapse_is_bit_identical_on_generated_lists() {
        let fx = Fixture::new(12);
        let env = fx.env();
        let faults = fault_list(&env);
        let baseline = Campaign::new(&env, &faults).threads(1).run();
        for threads in [1, 2, 4] {
            let collapsed = Campaign::new(&env, &faults)
                .threads(threads)
                .collapse(true)
                .run();
            assert_eq!(
                baseline, collapsed,
                "collapse diverges at {threads} threads"
            );
        }
        let composed = Campaign::new(&env, &faults)
            .threads(2)
            .collapse(true)
            .accelerated(true)
            .checkpoint_interval(4)
            .run();
        assert_eq!(baseline, composed, "collapse+accel diverges");
    }

    #[test]
    fn collapse_simulates_fewer_faults_and_accounts_for_all() {
        let fx = Fixture::new(12);
        let env = fx.env();
        let faults = exhaustive_stuck_list(&fx.nl);
        let baseline = Campaign::new(&env, &faults).threads(1).run();
        let campaign = Campaign::new(&env, &faults).threads(1).collapse(true);
        let stats = campaign.stats();
        let result = campaign.run();
        assert_eq!(baseline, result, "collapsed outcomes diverge");
        assert!(
            stats.faults_collapsed() > 0,
            "exhaustive list on the protected design must collapse something"
        );
        assert_eq!(
            stats.faults_done() + stats.faults_collapsed(),
            result.outcomes.len(),
            "every fault is either simulated or dictionary-annotated"
        );
        assert!(stats.collapse_ratio() > 1.0);
        assert_eq!(stats.outcome_counts(), result.outcome_counts());
        let summary = stats.summary();
        assert_eq!(summary.faults_collapsed, stats.faults_collapsed());
        assert!(summary.collapse_ratio > 1.0);
        assert!(summary.to_string().contains("via dictionary"), "{summary}");
    }

    #[test]
    fn collapse_preserves_early_stop_behaviour() {
        let fx = Fixture::new(12);
        let env = fx.env();
        let faults = exhaustive_stuck_list(&fx.nl);
        let policy = EarlyStop::CoverageComplete {
            expect_diagnostics: true,
        };
        let baseline = Campaign::new(&env, &faults)
            .threads(1)
            .early_stop(policy)
            .run();
        for threads in [1, 3] {
            let collapsed = Campaign::new(&env, &faults)
                .threads(threads)
                .collapse(true)
                .early_stop(policy)
                .run();
            assert_eq!(
                baseline, collapsed,
                "early-stop divergence under collapse at {threads} threads"
            );
        }
    }

    #[test]
    fn fresh_stats_guard_their_zero_denominators() {
        // Satellite: a stats block with no work done must not divide by
        // zero — the mean fault time is zero and the collapse ratio is the
        // identity 1.0.
        let stats = CampaignStats::new();
        assert_eq!(stats.mean_fault_time(), std::time::Duration::ZERO);
        assert_eq!(stats.collapse_ratio(), 1.0);
        assert_eq!(stats.faults_collapsed(), 0);
    }
}
