//! Accelerated campaign execution: checkpointed warm starts and
//! divergence-set propagation, with bit-identical outcomes.
//!
//! Opt in with [`Campaign::engine`](crate::Campaign::engine)
//! ([`Engine::Sparse`]). The
//! campaign then records one [`GoldenTrace`] (full per-cycle value matrix
//! plus periodic checkpoints) instead of the baseline's monitor-column
//! trace, and each fault takes one of two exact fast paths:
//!
//! * **Sparse** (bit flips, stuck-ats, glitches): the fault's effect is a
//!   pure state override, so the faulty run equals golden until the
//!   activation cycle by construction. A [`SparseSim`] starts *at* the
//!   activation cycle and evaluates only the fan-out cone of the nets that
//!   differ from golden, classifying the remaining cycles straight from the
//!   trace once the divergence set empties.
//! * **Warm start** (bridges, clock outages): these change evaluation
//!   semantics globally, so a full [`Simulator`] runs — but it restores the
//!   nearest checkpoint at or before the activation cycle instead of
//!   re-simulating from power-on, skips the monitors on the (provably
//!   golden) warm-up prefix, and exits early once the fault has washed out
//!   and the flip-flop state matches golden again.
//!
//! Both paths observe SENS/OBSE/output/alarm events under exactly the same
//! conditions as [`simulate_one`](crate::inject::simulate_one) — the
//! differential tests in this module and `tests/prop_accel.rs` assert
//! bit-identical [`FaultOutcome`]s on every fault kind.

use crate::campaign::Engine;
use crate::env::Environment;
use crate::faultlist::{Fault, FaultKind};
use crate::inject::{
    apply_fault, finalize_outcome, prepare_context, simulate_one, target_net, CampaignContext,
    FaultOutcome,
};
use socfmea_accel::{GoldenTrace, SparseSim, Topology};
use socfmea_core::ZoneId;
use socfmea_netlist::{Logic, NetId, Netlist};
use socfmea_sim::{Simulator, WordSim};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// True when a cooperative cancellation token has fired. Checked once per
/// simulated cycle on every engine path, so a `DELETE`d server job stops
/// promptly even inside a long single-fault simulation; the aborted
/// fault's (garbage) outcome is discarded by the campaign loop.
pub(crate) fn cancel_fired(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Per-fault work accounting: how many cycles the engine actually
/// evaluated versus how many it answered from the golden trace (the
/// warm-start prefix plus the post-convergence suffix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FaultMetrics {
    /// Cycles evaluated (sparsely or in full).
    pub(crate) simulated: u64,
    /// Cycles answered from the golden trace without evaluation.
    pub(crate) skipped: u64,
    /// Engine path that classified the fault: `lockstep`, `sparse`,
    /// `warm`, or `ppsfp` (the trace and metrics attribute work per path).
    pub(crate) engine: &'static str,
}

impl Default for FaultMetrics {
    fn default() -> FaultMetrics {
        FaultMetrics {
            simulated: 0,
            skipped: 0,
            engine: "lockstep",
        }
    }
}

/// Everything the accelerated path shares across faults: the golden trace
/// with its checkpoint store, the propagation topology, and per-net monitor
/// lookups. Immutable after construction; worker threads share it by
/// reference (each worker owns its own [`SparseSim`] kernel).
pub(crate) struct AccelContext {
    pub(crate) trace: GoldenTrace,
    pub(crate) topo: Topology,
    /// Zone of each observation net (by net index), `None` elsewhere.
    obs_zone: Vec<Option<ZoneId>>,
    is_output: Vec<bool>,
    is_alarm: Vec<bool>,
    pub(crate) injected_zones: BTreeSet<ZoneId>,
}

/// The campaign's execution strategy, fixed at [`Campaign::run`] time:
/// the baseline lockstep context, the accelerated one, or the bit-parallel
/// PPSFP one (which keeps a lockstep context around for the collapse
/// planner and for faults that cannot ride a word lane).
///
/// [`Campaign::run`]: crate::Campaign::run
pub(crate) enum ExecContext {
    Baseline(CampaignContext),
    Accel(AccelContext),
    Ppsfp(CampaignContext),
}

impl ExecContext {
    /// Prepares the context for `env`/`faults` under the chosen (already
    /// resolved — never [`Engine::Auto`]) strategy.
    pub(crate) fn prepare(
        env: &Environment<'_>,
        faults: &[Fault],
        engine: Engine,
        checkpoint_interval: usize,
    ) -> ExecContext {
        match engine {
            Engine::Lockstep => ExecContext::Baseline(prepare_context(env, faults)),
            Engine::Sparse => {
                ExecContext::Accel(prepare_accel_context(env, faults, checkpoint_interval))
            }
            Engine::Ppsfp => ExecContext::Ppsfp(prepare_context(env, faults)),
            Engine::Auto => unreachable!("Engine::Auto is resolved before context preparation"),
        }
    }

    /// Zones the fault list targets (drives the coverage collection).
    pub(crate) fn injected_zones(&self) -> &BTreeSet<ZoneId> {
        match self {
            ExecContext::Baseline(c) | ExecContext::Ppsfp(c) => &c.injected_zones,
            ExecContext::Accel(a) => &a.injected_zones,
        }
    }

    /// The per-worker sparse kernel, if this context is accelerated.
    pub(crate) fn make_sparse<'c>(&'c self, netlist: &'c Netlist) -> Option<SparseSim<'c>> {
        match self {
            ExecContext::Baseline(_) | ExecContext::Ppsfp(_) => None,
            ExecContext::Accel(a) => Some(SparseSim::new(netlist, &a.topo, &a.trace)),
        }
    }

    /// The per-worker word-level kernel, if this context is PPSFP.
    pub(crate) fn make_word<'c>(&self, netlist: &'c Netlist) -> Option<WordSim<'c>> {
        match self {
            ExecContext::Baseline(_) | ExecContext::Accel(_) => None,
            ExecContext::Ppsfp(_) => Some(WordSim::new(netlist).expect("levelizable netlist")),
        }
    }

    /// Golden value of a fault-targeted net at a cycle, from whichever
    /// trace this context carries (the collapse planner needs it to
    /// reproduce the SENS monitor's target-excitation check).
    pub(crate) fn golden_value(&self, cycle: usize, net: NetId) -> Logic {
        match self {
            ExecContext::Baseline(c) | ExecContext::Ppsfp(c) => c.golden_target(cycle, net),
            ExecContext::Accel(a) => a.trace.value(cycle, net),
        }
    }

    /// Approximate resident size in bytes (the artifact cache's eviction
    /// currency): the golden trace (matrix + checkpoints on the
    /// accelerated path, monitor columns otherwise) plus the per-net
    /// monitor lookups.
    pub(crate) fn approx_bytes(&self, env: &Environment<'_>) -> usize {
        match self {
            ExecContext::Baseline(c) | ExecContext::Ppsfp(c) => c.approx_bytes(),
            ExecContext::Accel(a) => {
                a.trace.matrix_bytes() + a.trace.checkpoint_bytes() + env.netlist.net_count() * 16
            }
        }
    }
}

/// Records the golden trace (with checkpoints) and builds the monitor
/// lookups for the accelerated path.
///
/// # Panics
///
/// Panics if the netlist cannot be levelized.
pub(crate) fn prepare_accel_context(
    env: &Environment<'_>,
    faults: &[Fault],
    checkpoint_interval: usize,
) -> AccelContext {
    let trace = GoldenTrace::record(env.netlist, env.workload, checkpoint_interval)
        .expect("levelizable netlist");
    let topo = Topology::build(env.netlist).expect("levelizable netlist");
    let n = env.netlist.net_count();
    let mut obs_zone = vec![None; n];
    for &net in &env.observation_nets {
        obs_zone[net.index()] = env.zone_of_net(net);
    }
    let mut is_output = vec![false; n];
    for &net in &env.functional_outputs {
        is_output[net.index()] = true;
    }
    let mut is_alarm = vec![false; n];
    for &net in &env.alarm_nets {
        is_alarm[net.index()] = true;
    }
    AccelContext {
        trace,
        topo,
        obs_zone,
        is_output,
        is_alarm,
        injected_zones: faults.iter().filter_map(|f| f.zone).collect(),
    }
}

/// Runs one fault under the campaign's execution strategy. The outcome is
/// bit-identical across strategies; only the metrics differ.
pub(crate) fn simulate_dispatch(
    env: &Environment<'_>,
    ctx: &ExecContext,
    sim: &mut Simulator<'_>,
    sparse: Option<&mut SparseSim<'_>>,
    fault_index: usize,
    fault: &Fault,
    cancel: Option<&AtomicBool>,
) -> (FaultOutcome, FaultMetrics) {
    match ctx {
        // Under PPSFP, batchable stuck-ats never reach this dispatcher (the
        // campaign routes them through `ppsfp::simulate_batch`); whatever is
        // left falls back to the lockstep path, fault by fault.
        ExecContext::Baseline(c) | ExecContext::Ppsfp(c) => {
            let fo = simulate_one(env, c, sim, fault_index, fault, cancel);
            let metrics = FaultMetrics {
                simulated: env.workload.len() as u64,
                skipped: 0,
                engine: "lockstep",
            };
            (fo, metrics)
        }
        ExecContext::Accel(a) => match fault.kind {
            FaultKind::BitFlip { .. } | FaultKind::StuckAt { .. } | FaultKind::Glitch { .. } => {
                simulate_sparse(
                    env,
                    a,
                    sparse.expect("accelerated worker carries a sparse kernel"),
                    fault_index,
                    fault,
                    cancel,
                )
            }
            FaultKind::Bridge { .. } | FaultKind::ClockStuck { .. } => {
                simulate_warm(env, a, sim, fault_index, fault, cancel)
            }
        },
    }
}

/// The sparse path: divergence-set propagation from the activation cycle.
fn simulate_sparse(
    env: &Environment<'_>,
    actx: &AccelContext,
    sparse: &mut SparseSim<'_>,
    fault_index: usize,
    fault: &Fault,
    cancel: Option<&AtomicBool>,
) -> (FaultOutcome, FaultMetrics) {
    let len = env.workload.len();
    let inject = fault.inject_cycle;
    let target = target_net(fault);
    let mut first_mismatch = None;
    let mut alarm_cycle = None;
    let mut deviated_zones = BTreeSet::new();
    let mut sens_triggered = false;
    let mut metrics = FaultMetrics {
        simulated: 0,
        // Everything before activation is golden by construction; a fault
        // scheduled past the workload never activates at all.
        skipped: inject.min(len) as u64,
        engine: "sparse",
    };

    if inject < len {
        sparse.begin(inject);
        match &fault.kind {
            FaultKind::BitFlip { dff } => sparse.flip_ff(*dff),
            FaultKind::StuckAt { net, value } => sparse.force(*net, *value),
            FaultKind::Glitch { net, value } => sparse.pulse(*net, *value),
            _ => unreachable!("sparse path only handles state-override faults"),
        }
        for cycle in inject..len {
            if cancel_fired(cancel) {
                break;
            }
            sparse.eval_cycle();
            metrics.simulated += 1;
            // Every monitor only reacts to faulty-vs-golden differences, so
            // scanning the (exact) divergence set observes the same events
            // as the baseline's full-width comparison.
            for &net in sparse.divergent() {
                let golden = actx.trace.value(cycle, net);
                if !sens_triggered && target == Some(net) && golden.is_known() {
                    sens_triggered = true;
                }
                if let Some(zone) = actx.obs_zone[net.index()] {
                    if golden.is_known() {
                        deviated_zones.insert(zone);
                        if Some(zone) == fault.zone {
                            sens_triggered = true;
                        }
                    }
                }
                if first_mismatch.is_none() && actx.is_output[net.index()] && golden.is_known() {
                    first_mismatch = Some(cycle);
                }
                // divergent && faulty == 1 implies golden != 1, the exact
                // baseline alarm condition
                if alarm_cycle.is_none()
                    && actx.is_alarm[net.index()]
                    && sparse.get(net) == Logic::One
                {
                    alarm_cycle = Some(cycle);
                }
            }
            sparse.tick();
            if sparse.converged() {
                metrics.skipped += (len - (cycle + 1)) as u64;
                break;
            }
        }
    }

    let fo = finalize_outcome(
        env,
        fault,
        fault_index,
        first_mismatch,
        alarm_cycle,
        sens_triggered,
        deviated_zones,
    );
    (fo, metrics)
}

/// The warm-start path: full simulation restored from the nearest
/// checkpoint, monitor-free until activation, early exit on re-convergence.
fn simulate_warm(
    env: &Environment<'_>,
    actx: &AccelContext,
    sim: &mut Simulator<'_>,
    fault_index: usize,
    fault: &Fault,
    cancel: Option<&AtomicBool>,
) -> (FaultOutcome, FaultMetrics) {
    let len = env.workload.len();
    let inject = fault.inject_cycle;
    let trace = &actx.trace;
    let target = target_net(fault);
    let mut first_mismatch = None;
    let mut alarm_cycle = None;
    let mut deviated_zones = BTreeSet::new();
    let mut sens_triggered = false;
    let mut clock_off: Option<usize> = None;
    let mut metrics = FaultMetrics {
        simulated: 0,
        skipped: 0,
        engine: "warm",
    };

    if inject < len {
        let cp = trace
            .checkpoint_at_or_before(inject)
            .expect("non-empty trace has a cycle-0 checkpoint");
        // Restoring overwrites all dynamic state, so a reused worker
        // simulator needs no reset first.
        sim.restore(cp);
        let start = cp.cycle() as usize;
        metrics.skipped += start as u64;
        for cycle in start..len {
            if cancel_fired(cancel) {
                break;
            }
            for &(n, v) in env.workload.cycle(cycle) {
                sim.set(n, v);
            }
            if cycle == inject {
                clock_off = apply_fault(sim, fault);
            }
            if let Some(remaining) = clock_off {
                if remaining == 0 {
                    sim.suppress_clock(false);
                    clock_off = None;
                }
            }
            sim.eval();
            metrics.simulated += 1;
            if cycle >= inject {
                // Same monitor block as the baseline, reading golden values
                // from the trace matrix instead of per-monitor columns.
                if !sens_triggered {
                    if let Some(t) = target {
                        let g = trace.value(cycle, t);
                        if g.is_known() && sim.get(t) != g {
                            sens_triggered = true;
                        }
                    }
                }
                for &net in &env.observation_nets {
                    let g = trace.value(cycle, net);
                    if g.is_known() && sim.get(net) != g {
                        if let Some(zone) = env.zone_of_net(net) {
                            deviated_zones.insert(zone);
                            if Some(zone) == fault.zone {
                                sens_triggered = true;
                            }
                        }
                    }
                }
                if first_mismatch.is_none() {
                    for &net in &env.functional_outputs {
                        let g = trace.value(cycle, net);
                        if g.is_known() && sim.get(net) != g {
                            first_mismatch = Some(cycle);
                            break;
                        }
                    }
                }
                if alarm_cycle.is_none() {
                    for &net in &env.alarm_nets {
                        if sim.get(net) == Logic::One && trace.value(cycle, net) != Logic::One {
                            alarm_cycle = Some(cycle);
                            break;
                        }
                    }
                }
            }
            sim.tick();
            if let Some(remaining) = clock_off.as_mut() {
                *remaining = remaining.saturating_sub(1);
            }
            // Early exit: once no fault hook is active and the stored
            // flip-flop state equals golden (the q value entering the next
            // cycle), the rest of the run is cycle-for-cycle golden and can
            // fire no monitor.
            if cycle >= inject && cycle + 1 < len && clock_off.is_none() && !sim.has_active_faults()
            {
                let ff_state = sim.ff_states();
                let back_in_step = sim
                    .netlist()
                    .dffs()
                    .iter()
                    .enumerate()
                    .all(|(i, ff)| ff_state[i] == trace.value(cycle + 1, ff.q));
                if back_in_step {
                    metrics.skipped += (len - (cycle + 1)) as u64;
                    break;
                }
            }
        }
    } else {
        metrics.skipped = len as u64;
    }

    let fo = finalize_outcome(
        env,
        fault,
        fault_index,
        first_mismatch,
        alarm_cycle,
        sens_triggered,
        deviated_zones,
    );
    (fo, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::env::EnvironmentBuilder;
    use crate::faultlist::{generate_fault_list, FaultListConfig};
    use crate::profile::OperationalProfile;
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::{assign_bus, Workload};

    fn protected_design() -> socfmea_netlist::Netlist {
        let mut r = RtlBuilder::new("prot");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 4);
        r.push_block("regs");
        let q = r.register("data", &d, None, None);
        let pin = r.parity(&d);
        let pq = r.register_bit("par", pin, None, None);
        r.pop_block();
        let pout = r.parity(&q);
        let perr = r.xor2_bit(pout, pq);
        r.output_word("o", &q);
        r.output("alarm_parity", perr);
        r.finish().unwrap()
    }

    fn workload(nl: &socfmea_netlist::Netlist, cycles: u64) -> Workload {
        let d: Vec<_> = (0..4)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..cycles {
            let mut v = Vec::new();
            assign_bus(&mut v, &d, c % 16);
            w.push_cycle(v);
        }
        w
    }

    fn fault_list(env: &Environment<'_>, seed: u64) -> Vec<Fault> {
        let profile = OperationalProfile::collect(env);
        generate_fault_list(
            env,
            &profile,
            &FaultListConfig {
                seed,
                ..FaultListConfig::default()
            },
        )
    }

    #[test]
    fn accelerated_campaign_is_bit_identical_to_baseline() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 16);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let faults = fault_list(&env, 7);
        assert!(
            faults
                .iter()
                .map(|f| std::mem::discriminant(&f.kind))
                .collect::<std::collections::HashSet<_>>()
                .len()
                >= 4,
            "fixture should exercise several fault kinds"
        );
        let baseline = Campaign::new(&env, &faults).run();
        for interval in [1, 5, 64] {
            let accel = Campaign::new(&env, &faults)
                .engine(Engine::Sparse)
                .checkpoint_interval(interval)
                .run();
            assert_eq!(
                baseline, accel,
                "divergence at checkpoint interval {interval}"
            );
        }
    }

    #[test]
    fn accelerated_matches_across_thread_counts() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 12);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let faults = fault_list(&env, 21);
        let reference = Campaign::new(&env, &faults).run();
        for threads in [1, 3] {
            let accel = Campaign::new(&env, &faults)
                .engine(Engine::Sparse)
                .threads(threads)
                .chunk(2)
                .run();
            assert_eq!(reference, accel, "divergence at {threads} threads");
        }
    }

    #[test]
    fn fault_scheduled_past_the_workload_matches_baseline() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 8);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let data = zones.zone_by_name("regs/data").unwrap();
        let socfmea_core::ZoneKind::RegisterGroup { dffs } = &data.kind else {
            panic!("register zone expected");
        };
        // an activation cycle beyond the workload: the fault never fires
        let faults = vec![Fault {
            kind: FaultKind::BitFlip { dff: dffs[0] },
            zone: Some(data.id),
            inject_cycle: 99,
            label: "late flip".into(),
        }];
        let baseline = Campaign::new(&env, &faults).run();
        let accel = Campaign::new(&env, &faults).engine(Engine::Sparse).run();
        assert_eq!(baseline, accel);
        assert_eq!(
            baseline.outcomes[0].outcome,
            crate::inject::Outcome::NoEffect
        );
    }

    #[test]
    fn accelerated_campaign_skips_cycles() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 24);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let data = zones.zone_by_name("regs/data").unwrap();
        let socfmea_core::ZoneKind::RegisterGroup { dffs } = &data.kind else {
            panic!("register zone expected");
        };
        // a late flip: the sparse path skips the long golden prefix, and
        // the (un-enabled, feed-forward) register flushes it out again
        let faults = vec![Fault {
            kind: FaultKind::BitFlip { dff: dffs[1] },
            zone: Some(data.id),
            inject_cycle: 20,
            label: "late flip".into(),
        }];
        let campaign = Campaign::new(&env, &faults).engine(Engine::Sparse);
        let stats = campaign.stats();
        let _ = campaign.run();
        assert!(
            stats.cycles_skipped() >= 20,
            "expected at least the pre-activation prefix skipped, got {}",
            stats.cycles_skipped()
        );
        assert!(stats.cycles_simulated() < 24);
        assert_eq!(stats.cycles_simulated() + stats.cycles_skipped(), 24);
    }
}
