//! The PPSFP campaign engine: bit-parallel stuck-at batches on a
//! word-level simulation core.
//!
//! Pattern-parallel single-fault propagation turned fault-parallel: a
//! [`WordSim`] carries 64 lanes per net — lane 0 golden, lanes
//! `1..=FAULT_LANES` each loaded with one stuck-at fault — so the levelized
//! netlist walk is paid **once per workload cycle for up to 63 faults**,
//! instead of once per cycle per fault. Every monitor of the lockstep
//! reference ([`simulate_one`](crate::inject::simulate_one)) has an exact
//! word-level form:
//!
//! * **SENS** — the fault's own target net diverges from lane 0 while the
//!   golden value is known: `golden_known(t) && diff_mask(t) & lane_bit`.
//! * **OBSE** — an observation net diverges: the deviated zone is recorded
//!   per lane; a hit on the fault's own zone also sets SENS.
//! * **Functional outputs** — first divergence cycle per lane.
//! * **Alarms** — a lane is exactly `One` where the golden lane is not:
//!   `one_mask` with a clear golden bit.
//!
//! Lane *i* of a batch evolves bit-for-bit like a scalar [`Simulator`]
//! (crate::inject's engine) carrying the same persistent force, so the
//! per-lane verdicts fed through [`finalize_outcome`] are **bit-identical**
//! to the lockstep engine's [`FaultOutcome`]s — the property
//! `tests/ppsfp_differential.rs` asserts on every example design.
//!
//! Only known-value stuck-at faults batch (a stuck-at is the only fault
//! kind that is a pure persistent per-net override); everything else falls
//! back to the lockstep path per fault.

use crate::env::Environment;
use crate::faultlist::{Fault, FaultKind};
use crate::inject::{finalize_outcome, target_net, FaultOutcome};
use socfmea_core::ZoneId;
use socfmea_netlist::{Logic, NetId};
use socfmea_sim::{WordSim, FAULT_LANES};
use std::collections::BTreeSet;

/// True when a fault can ride a PPSFP word lane: a stuck-at with a known
/// (`0`/`1`) value. `Engine::Auto` batches a fault list iff every fault
/// satisfies this.
pub(crate) fn batchable(fault: &Fault) -> bool {
    matches!(fault.kind, FaultKind::StuckAt { value, .. } if value.is_known())
}

/// Per-lane monitor state while a batch runs.
struct LaneState {
    net: NetId,
    value: Logic,
    inject_cycle: usize,
    first_mismatch: Option<usize>,
    alarm_cycle: Option<usize>,
    sens_triggered: bool,
    deviated_zones: BTreeSet<ZoneId>,
}

/// Simulates one batch of up to [`FAULT_LANES`] stuck-at faults against the
/// shared workload, returning one [`FaultOutcome`] per fault in batch
/// order.
///
/// `word` is reused across batches: the function resets it to power-on
/// (clearing previous lane pins) first, so a campaign worker pays
/// levelization once. The result is a pure function of `(env, batch)`.
///
/// # Panics
///
/// Panics if the batch is empty, exceeds [`FAULT_LANES`], or contains a
/// non-[`batchable`] fault.
pub(crate) fn simulate_batch(
    env: &Environment<'_>,
    word: &mut WordSim<'_>,
    batch: &[(usize, &Fault)],
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Vec<FaultOutcome> {
    assert!(
        !batch.is_empty() && batch.len() <= FAULT_LANES,
        "a PPSFP batch holds 1..={FAULT_LANES} faults, got {}",
        batch.len()
    );
    word.reset_to_power_on();
    let mut lanes: Vec<LaneState> = batch
        .iter()
        .map(|&(_, fault)| {
            let FaultKind::StuckAt { net, value } = fault.kind else {
                panic!("PPSFP batches hold stuck-at faults only");
            };
            assert!(value.is_known(), "stuck-at value must be 0 or 1");
            LaneState {
                net,
                value,
                inject_cycle: fault.inject_cycle,
                first_mismatch: None,
                alarm_cycle: None,
                sens_triggered: false,
                deviated_zones: BTreeSet::new(),
            }
        })
        .collect();

    for (cycle, inputs) in env.workload.iter().enumerate() {
        if crate::accel::cancel_fired(cancel) {
            break;
        }
        for &(n, v) in inputs {
            word.set(n, v);
        }
        // Lane pins activate at each fault's own inject cycle and persist,
        // mirroring the lockstep engine's `apply_fault` timing (before the
        // eval of the activation cycle).
        for (li, lane) in lanes.iter().enumerate() {
            if lane.inject_cycle == cycle {
                word.force_lane(lane.net, li + 1, lane.value);
            }
        }
        word.eval();

        // SENS: did the injection physically disturb its target net?
        for (li, lane) in lanes.iter_mut().enumerate() {
            if !lane.sens_triggered
                && word.golden_known(lane.net)
                && word.diff_mask(lane.net) & (1 << (li + 1)) != 0
            {
                lane.sens_triggered = true;
            }
        }
        // OBSE: observation-point deviations, per diverged lane
        for &net in &env.observation_nets {
            if !word.golden_known(net) {
                continue;
            }
            let mut diff = word.diff_mask(net);
            if diff == 0 {
                continue;
            }
            let Some(zone) = env.zone_of_net(net) else {
                continue;
            };
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                if let Some(lane) = lanes.get_mut(bit - 1) {
                    lane.deviated_zones.insert(zone);
                    if Some(zone) == batch[bit - 1].1.zone {
                        lane.sens_triggered = true;
                    }
                }
            }
        }
        // functional outputs: first divergence cycle per lane
        for &net in &env.functional_outputs {
            if !word.golden_known(net) {
                continue;
            }
            let mut diff = word.diff_mask(net);
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                diff &= diff - 1;
                if let Some(lane) = lanes.get_mut(bit - 1) {
                    if lane.first_mismatch.is_none() {
                        lane.first_mismatch = Some(cycle);
                    }
                }
            }
        }
        // alarms: a lane asserts (exactly One) where the golden lane does
        // not — the word form of `faulty == One && golden != One`
        for &net in &env.alarm_nets {
            let ones = word.one_mask(net);
            if ones & 1 != 0 {
                continue; // golden asserts too: no lane can newly alarm
            }
            let mut firing = ones;
            while firing != 0 {
                let bit = firing.trailing_zeros() as usize;
                firing &= firing - 1;
                if let Some(lane) = lanes.get_mut(bit - 1) {
                    if lane.alarm_cycle.is_none() {
                        lane.alarm_cycle = Some(cycle);
                    }
                }
            }
        }

        word.tick();
    }

    batch
        .iter()
        .zip(lanes)
        .map(|(&(fault_index, fault), lane)| {
            debug_assert_eq!(target_net(fault), Some(lane.net));
            finalize_outcome(
                env,
                fault,
                fault_index,
                lane.first_mismatch,
                lane.alarm_cycle,
                lane.sens_triggered,
                lane.deviated_zones,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvironmentBuilder;
    use crate::inject::{prepare_context, simulate_one};
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_netlist::Driver;
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::{assign_bus, Simulator, Workload};

    fn protected_design() -> socfmea_netlist::Netlist {
        let mut r = RtlBuilder::new("prot");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 8);
        r.push_block("regs");
        let q = r.register("data", &d, None, None);
        let pin = r.parity(&d);
        let pq = r.register_bit("par", pin, None, None);
        r.pop_block();
        let pout = r.parity(&q);
        let perr = r.xor2_bit(pout, pq);
        r.output_word("o", &q);
        r.output("alarm_parity", perr);
        r.finish().unwrap()
    }

    fn workload(nl: &socfmea_netlist::Netlist, cycles: u64) -> Workload {
        let d: Vec<_> = (0..8)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..cycles {
            let mut v = Vec::new();
            assign_bus(&mut v, &d, c.wrapping_mul(37) % 256);
            w.push_cycle(v);
        }
        w
    }

    /// Every stuck-at on every driven net, staggered inject cycles.
    fn stuck_list(nl: &socfmea_netlist::Netlist) -> Vec<Fault> {
        let mut faults = Vec::new();
        for (i, net) in nl.nets().iter().enumerate() {
            if matches!(net.driver, Driver::None | Driver::Const(_)) {
                continue;
            }
            for value in [Logic::Zero, Logic::One] {
                faults.push(Fault {
                    kind: FaultKind::StuckAt {
                        net: NetId::from_index(i),
                        value,
                    },
                    zone: None,
                    inject_cycle: faults.len() % 5,
                    label: format!("stuck {}-sa{value}", net.name),
                });
            }
        }
        faults
    }

    #[test]
    fn batched_outcomes_equal_the_lockstep_engine_fault_for_fault() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 12);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let faults = stuck_list(&nl);
        assert!(faults.len() > FAULT_LANES, "want more than one batch");
        let ctx = prepare_context(&env, &faults);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut word = WordSim::new(&nl).unwrap();
        for chunk in faults
            .iter()
            .enumerate()
            .collect::<Vec<_>>()
            .chunks(FAULT_LANES)
        {
            let got = simulate_batch(&env, &mut word, chunk, None);
            for (&(fi, fault), fo) in chunk.iter().zip(&got) {
                let want = simulate_one(&env, &ctx, &mut sim, fi, fault, None);
                assert_eq!(&want, fo, "fault #{fi} ({}) diverges", fault.label);
            }
        }
    }

    #[test]
    fn late_injection_past_the_workload_is_no_effect() {
        let nl = protected_design();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = workload(&nl, 8);
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let fault = Fault {
            kind: FaultKind::StuckAt {
                net: nl.net_by_name("data[0]").unwrap(),
                value: Logic::One,
            },
            zone: None,
            inject_cycle: 99,
            label: "never fires".into(),
        };
        let mut word = WordSim::new(&nl).unwrap();
        let got = simulate_batch(&env, &mut word, &[(0, &fault)], None);
        assert_eq!(got[0].outcome, crate::inject::Outcome::NoEffect);
        assert!(!got[0].sens_triggered);
    }

    #[test]
    fn batchable_accepts_known_stuck_ats_only() {
        let net = NetId::from_index(0);
        let stuck = |value| Fault {
            kind: FaultKind::StuckAt { net, value },
            zone: None,
            inject_cycle: 0,
            label: "f".into(),
        };
        assert!(batchable(&stuck(Logic::Zero)));
        assert!(batchable(&stuck(Logic::One)));
        assert!(!batchable(&stuck(Logic::X)));
        assert!(!batchable(&Fault {
            kind: FaultKind::Glitch {
                net,
                value: Logic::One
            },
            zone: None,
            inject_cycle: 0,
            label: "g".into(),
        }));
    }
}
