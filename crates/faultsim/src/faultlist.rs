//! Candidate fault-list generation, equivalence collapsing and seeded
//! randomisation.
//!
//! "this block extracts the Operational Profile (OP) from a given workload
//! ... to ensure that only faults which will produce an error are selected
//! during the fault list generation process. In this way the generated
//! fault list is compacted and non trivial" (paper §5).

use crate::env::Environment;
use crate::profile::OperationalProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use socfmea_core::{wide_fault_sites, ZoneId, ZoneKind};
use socfmea_netlist::{DffId, Driver, GateKind, Logic, NetId, Netlist};
use socfmea_sim::BridgeKind;
use std::fmt;

/// What a single injection does to the faulty design copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Soft error: flip the stored state of one flip-flop at the injection
    /// cycle.
    BitFlip {
        /// The flipped flip-flop.
        dff: DffId,
    },
    /// Permanent stuck-at on a net, active from the injection cycle on.
    StuckAt {
        /// The faulted net.
        net: NetId,
        /// The stuck value.
        value: Logic,
    },
    /// Single-cycle glitch on a net (sampled or masked by downstream logic).
    Glitch {
        /// The glitched net.
        net: NetId,
        /// The forced value.
        value: Logic,
    },
    /// Bridging fault between two nets, active from the injection cycle on.
    Bridge {
        /// Aggressor net.
        aggressor: NetId,
        /// Victim net.
        victim: NetId,
        /// Coupling model.
        kind: BridgeKind,
    },
    /// Global clock fault: the clock tree stops toggling for `cycles`
    /// cycles.
    ClockStuck {
        /// Duration of the outage.
        cycles: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BitFlip { dff } => write!(f, "bitflip@{dff}"),
            FaultKind::StuckAt { net, value } => write!(f, "sa{value}@{net}"),
            FaultKind::Glitch { net, value } => write!(f, "glitch{value}@{net}"),
            FaultKind::Bridge {
                aggressor, victim, ..
            } => write!(f, "bridge {aggressor}->{victim}"),
            FaultKind::ClockStuck { cycles } => write!(f, "clock-stuck {cycles}cy"),
        }
    }
}

/// A scheduled fault: what, where (which zone it exercises) and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The physical action.
    pub kind: FaultKind,
    /// The sensible zone whose failure mode this injection exercises
    /// (`None` for raw local/global HW faults outside any zone).
    pub zone: Option<ZoneId>,
    /// Workload cycle at which the fault becomes active.
    pub inject_cycle: usize,
    /// Human-readable label for reports.
    pub label: String,
}

/// Parameters of the fault-list generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultListConfig {
    /// Bit flips sampled per sequential zone (exhaustive zone-failure
    /// injection, validation step (a)).
    pub bitflips_per_zone: usize,
    /// Stuck-at faults sampled per zone anchor group.
    pub stuckats_per_zone: usize,
    /// Local gate faults (glitches/stuck-ats inside cones) sampled per zone
    /// (validation step (c) — selective local HW injection).
    pub local_faults_per_zone: usize,
    /// Wide (shared-cone) faults sampled in total (validation step (d)).
    pub wide_faults: usize,
    /// Bridging (coupling) faults sampled in total: pairs of nets driven by
    /// gates of the same block with nearby ids — a placement-adjacency
    /// proxy, since "physical faults like resistive or capacitive coupling
    /// between lines are also included in such model" (paper §3).
    pub bridge_faults: usize,
    /// Include the global clock-stuck fault.
    pub global_faults: bool,
    /// Skip zones the operational profile shows as never active.
    pub skip_inactive_zones: bool,
    /// Canonicalise the stuck-at dedup through the full structural
    /// [`FaultCollapser`](crate::FaultCollapser) (gate equivalence rules,
    /// transitive chains) instead of buffer/inverter chains only, so the
    /// generated list is compacted across structurally equivalent sites.
    ///
    /// This changes *which faults are generated*. It is independent of
    /// [`Campaign::collapse`](crate::Campaign::collapse), which never
    /// changes the list and only skips redundant simulations.
    pub collapse: bool,
    /// RNG seed: identical seeds give identical lists.
    pub seed: u64,
}

impl FaultListConfig {
    /// Sets [`collapse`](Self::collapse) (builder style).
    pub fn collapse(mut self, on: bool) -> Self {
        self.collapse = on;
        self
    }
}

impl Default for FaultListConfig {
    fn default() -> FaultListConfig {
        FaultListConfig {
            bitflips_per_zone: 4,
            stuckats_per_zone: 2,
            local_faults_per_zone: 2,
            wide_faults: 8,
            bridge_faults: 4,
            global_faults: true,
            skip_inactive_zones: true,
            collapse: false,
            seed: 0x5eed,
        }
    }
}

/// Collapses a stuck-at fault site through buffer/inverter chains to its
/// canonical (driver-side) equivalent: `sa-v` on a buffer output is
/// equivalent to `sa-v` on its input; through an inverter the polarity
/// flips. Returns the canonical `(net, value)`.
///
/// A chain net is only traversed when it is invisible to everything but
/// the buffer/inverter itself: its sole gate reader is that gate, no
/// flip-flop samples it, and it is not a primary output. Collapsing
/// through a fanout stem would *not* be an equivalence — `sa-v` on one
/// branch leaves the other branches fault-free, while `sa-v` on the stem
/// faults them all. The full per-gate equivalence rules (AND/OR/NAND/NOR
/// controlling values, const-degenerate gates) live in
/// [`FaultCollapser`](crate::FaultCollapser).
///
/// # Example
///
/// ```
/// use socfmea_netlist::{GateKind, Logic, NetlistBuilder};
/// use socfmea_faultsim::collapse_stuck_at;
///
/// let mut b = NetlistBuilder::new("c");
/// let a = b.input("a");
/// let x = b.gate(GateKind::Not, &[a], "x");
/// let y = b.gate(GateKind::Buf, &[x], "y");
/// b.output("o", y);
/// let nl = b.finish()?;
/// let y_net = nl.net_by_name("y").unwrap();
/// // sa0 on y == sa0 on x == sa1 on a
/// assert_eq!(collapse_stuck_at(&nl, y_net, Logic::Zero), (a, Logic::One));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn collapse_stuck_at(netlist: &Netlist, mut net: NetId, mut value: Logic) -> (NetId, Logic) {
    let gate_fanout = netlist.gate_fanout();
    let dff_fanout = netlist.dff_fanout();
    loop {
        let Driver::Gate(g) = netlist.net(net).driver else {
            return (net, value);
        };
        let gate = netlist.gate(g);
        let flip = match gate.kind {
            GateKind::Buf => false,
            GateKind::Not => true,
            _ => return (net, value),
        };
        let src = gate.inputs[0];
        if gate_fanout[src.index()].len() != 1
            || !dff_fanout[src.index()].is_empty()
            || netlist.outputs().contains(&src)
        {
            return (net, value);
        }
        net = src;
        if flip {
            value = value.not();
        }
    }
}

/// Generates a compacted, randomised fault list from the FMEA zones, the
/// operational profile and the configuration.
///
/// The list is deterministic in the seed. Injection cycles are sampled from
/// the first 80 % of the workload so effects have time to propagate.
pub fn generate_fault_list(
    env: &Environment<'_>,
    profile: &OperationalProfile,
    config: &FaultListConfig,
) -> Vec<Fault> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut faults = Vec::new();
    let horizon = (env.workload.len().saturating_mul(4) / 5).max(1);
    let pick_cycle = |rng: &mut StdRng| rng.random_range(0..horizon);

    let collapser = config
        .collapse
        .then(|| crate::collapse::FaultCollapser::build(env));
    let canonical_of = |net: NetId, value: Logic| match &collapser {
        Some(c) => c.canonical(net, value),
        None => collapse_stuck_at(env.netlist, net, value),
    };
    let mut seen_stuck: std::collections::HashSet<(NetId, Logic)> =
        std::collections::HashSet::new();
    let mut seen_zone_stuck: std::collections::HashSet<(NetId, Logic, ZoneId)> =
        std::collections::HashSet::new();

    for zone in env.zones.zones() {
        if config.skip_inactive_zones
            && profile.activity(zone.id).active_cycles == 0
            && zone.is_sequential()
        {
            continue;
        }
        // (a) exhaustive sensible-zone failure injection: bit flips in
        // sequential zones.
        if let ZoneKind::RegisterGroup { dffs } | ZoneKind::SubBlock { dffs, .. } = &zone.kind {
            let mut targets: Vec<DffId> = dffs.clone();
            targets.shuffle(&mut rng);
            for &dff in targets.iter().take(config.bitflips_per_zone) {
                faults.push(Fault {
                    kind: FaultKind::BitFlip { dff },
                    zone: Some(zone.id),
                    inject_cycle: pick_cycle(&mut rng),
                    label: format!("{}: soft error in {dff}", zone.name),
                });
            }
        }
        // stuck-at on zone anchors (DC fault model of the zone itself);
        // both polarities per anchor so one of them always disturbs the net
        let mut anchors = zone.anchors.clone();
        anchors.shuffle(&mut rng);
        for &net in anchors.iter().take(config.stuckats_per_zone) {
            for value in [Logic::Zero, Logic::One] {
                let (cnet, cval) = canonical_of(net, value);
                // The dedup is per zone: a second anchor of the *same* zone
                // landing on an already-scheduled canonical site adds
                // nothing, but when the anchors of two zones collapse to a
                // shared site (e.g. a buffered anchor net), each zone keeps
                // its own attributed fault — silently dropping the second
                // would lose that zone's DC evidence.
                if !seen_zone_stuck.insert((cnet, cval, zone.id)) {
                    continue;
                }
                let mut label = format!("{}: stuck-at-{value} on {net}", zone.name);
                if !seen_stuck.insert((cnet, cval)) {
                    label.push_str(" (canonical site shared with another zone)");
                }
                faults.push(Fault {
                    kind: FaultKind::StuckAt { net, value },
                    zone: Some(zone.id),
                    inject_cycle: 0,
                    label,
                });
            }
        }
        // (c) selective local HW faults inside the converging cone;
        // restricted to genuinely *local* gates (single-cone membership) so
        // the zone attribution — and thus the effects cross-check — is
        // sound. Shared gates are wide fault sites and handled below.
        if !zone.cone.gates.is_empty() {
            let mut gates: Vec<_> = zone
                .cone
                .gates
                .iter()
                .copied()
                .filter(|&g| env.zones.membership().fan(g) == socfmea_netlist::GateFan::Local)
                .collect();
            gates.shuffle(&mut rng);
            for &g in gates.iter().take(config.local_faults_per_zone) {
                let net = env.netlist.gate(g).output;
                // both polarities: one of them always disturbs the net
                for value in [Logic::Zero, Logic::One] {
                    faults.push(Fault {
                        kind: FaultKind::Glitch { net, value },
                        zone: Some(zone.id),
                        inject_cycle: pick_cycle(&mut rng),
                        label: format!("{}: local glitch{value} on {net}", zone.name),
                    });
                }
            }
        }
    }

    // (d) wide faults: permanent stuck-at on gates shared between cones
    let mut wide = wide_fault_sites(env.zones);
    wide.truncate(config.wide_faults.max(wide.len().min(config.wide_faults)));
    for site in wide.into_iter().take(config.wide_faults) {
        let net = env.netlist.gate(site.gate).output;
        let value = if rng.random_bool(0.5) {
            Logic::One
        } else {
            Logic::Zero
        };
        let canonical = canonical_of(net, value);
        if !seen_stuck.insert(canonical) {
            continue;
        }
        // Wide faults carry no single-zone attribution: one physical fault
        // fails several zones at once (validation step (d) checks them
        // separately against the exhaustive zone-failure results).
        faults.push(Fault {
            kind: FaultKind::StuckAt { net, value },
            zone: None,
            inject_cycle: 0,
            label: format!("wide: stuck-at-{value} on shared {net}"),
        });
    }

    // bridging faults between same-block neighbours (layout proxy)
    if config.bridge_faults > 0 {
        let gates = env.netlist.gates();
        let mut candidates: Vec<(NetId, NetId)> = gates
            .windows(2)
            .filter(|w| w[0].block == w[1].block)
            .map(|w| (w[0].output, w[1].output))
            .collect();
        candidates.shuffle(&mut rng);
        for (aggressor, victim) in candidates.into_iter().take(config.bridge_faults) {
            let kind = if rng.random_bool(0.5) {
                BridgeKind::And
            } else {
                BridgeKind::Or
            };
            faults.push(Fault {
                kind: FaultKind::Bridge {
                    aggressor,
                    victim,
                    kind,
                },
                zone: None,
                inject_cycle: 0,
                label: format!("bridge {aggressor}->{victim} ({kind:?})"),
            });
        }
    }

    // global clock fault
    if config.global_faults {
        let clock_zone = env.zones.zones().iter().find(|z| {
            matches!(
                z.kind,
                ZoneKind::CriticalNet {
                    role: socfmea_netlist::CriticalNetKind::Clock,
                    ..
                }
            )
        });
        faults.push(Fault {
            kind: FaultKind::ClockStuck { cycles: 2 },
            zone: clock_zone.map(|z| z.id),
            inject_cycle: pick_cycle(&mut rng),
            label: "global: clock stuck for 2 cycles".into(),
        });
    }

    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvironmentBuilder;
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::{assign_bus, Workload};

    fn setup() -> (socfmea_netlist::Netlist, Workload) {
        let mut r = RtlBuilder::new("fl");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 4);
        let inv = r.not(&d);
        let a = r.register("a", &inv, None, None);
        let b = r.register("b", &a, None, None);
        r.output_word("o", &b);
        let nl = r.finish().unwrap();
        let d_nets: Vec<_> = (0..4)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..16u64 {
            let mut v = Vec::new();
            assign_bus(&mut v, &d_nets, c);
            w.push_cycle(v);
        }
        (nl, w)
    }

    #[test]
    fn list_is_deterministic_in_seed() {
        let (nl, w) = setup();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        let profile = OperationalProfile::collect(&env);
        let cfg = FaultListConfig::default();
        let a = generate_fault_list(&env, &profile, &cfg);
        let b = generate_fault_list(&env, &profile, &cfg);
        assert_eq!(a, b);
        let c = generate_fault_list(&env, &profile, &FaultListConfig { seed: 999, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn list_contains_all_fault_classes() {
        let (nl, w) = setup();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        let profile = OperationalProfile::collect(&env);
        let faults = generate_fault_list(&env, &profile, &FaultListConfig::default());
        assert!(faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::BitFlip { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::StuckAt { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Glitch { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ClockStuck { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Bridge { .. })));
        // all zone-failure faults are attributed
        assert!(faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::BitFlip { .. }))
            .all(|f| f.zone.is_some()));
        // injection cycles are within the workload
        assert!(faults.iter().all(|f| f.inject_cycle < w.len()));
    }

    #[test]
    fn collapse_through_chains() {
        let mut b = socfmea_netlist::NetlistBuilder::new("c");
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, &[a], "n1");
        let n2 = b.gate(GateKind::Not, &[n1], "n2");
        let bf = b.gate(GateKind::Buf, &[n2], "bf");
        b.output("o", bf);
        let nl = b.finish().unwrap();
        let bf_net = nl.net_by_name("bf").unwrap();
        // two inverters cancel: sa1 on bf == sa1 on a
        assert_eq!(collapse_stuck_at(&nl, bf_net, Logic::One), (a, Logic::One));
    }

    #[test]
    fn collapse_stops_at_fanout_stems() {
        let mut b = socfmea_netlist::NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.gate(GateKind::Not, &[a], "x");
        let y1 = b.gate(GateKind::Buf, &[x], "y1");
        let y2 = b.gate(GateKind::Buf, &[x], "y2");
        b.output("o1", y1);
        b.output("o2", y2);
        let nl = b.finish().unwrap();
        // `x` fans out to two buffers: sa0 on branch `y1` leaves `y2`
        // fault-free, so neither branch may collapse onto the stem — the
        // two branch faults must stay distinct
        assert_eq!(collapse_stuck_at(&nl, y1, Logic::Zero), (y1, Logic::Zero));
        assert_eq!(collapse_stuck_at(&nl, y2, Logic::Zero), (y2, Logic::Zero));
        assert_ne!(
            collapse_stuck_at(&nl, y1, Logic::Zero),
            collapse_stuck_at(&nl, y2, Logic::Zero)
        );
        // the single-fanout inverter input still collapses
        assert_eq!(collapse_stuck_at(&nl, x, Logic::Zero), (a, Logic::One));
    }

    #[test]
    fn collapse_stops_at_dff_readers_and_primary_outputs() {
        let mut b = socfmea_netlist::NetlistBuilder::new("edge");
        let d = b.input("d");
        let y = b.gate(GateKind::Buf, &[d], "y");
        let q = b.dff("q", d);
        let z = b.gate(GateKind::Buf, &[q], "z");
        b.output("o", y);
        b.output("oq", z);
        let nl = b.finish().unwrap();
        // `d` feeds a flip-flop D pin besides the buffer: not collapsible
        assert_eq!(collapse_stuck_at(&nl, y, Logic::One), (y, Logic::One));
        // `q` is only read by `z`, so that link still collapses
        assert_eq!(collapse_stuck_at(&nl, z, Logic::One), (q, Logic::One));
        // a port net never collapses past another primary output
        let o = nl.net_by_name("o").unwrap();
        assert_eq!(collapse_stuck_at(&nl, o, Logic::Zero), (y, Logic::Zero));
    }

    #[test]
    fn shared_canonical_site_keeps_both_zones_attribution() {
        // The `q` register zone anchors the q nets; the `po/o` output zone
        // anchors the port nets, which are port buffers of those same q
        // nets — so every po anchor collapses onto a q anchor's canonical
        // site. Before the per-zone dedup, the second zone's stuck-at
        // evidence was silently dropped.
        let mut r = RtlBuilder::new("share");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let d_nets: Vec<_> = (0..2)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..8u64 {
            let mut v = Vec::new();
            assign_bus(&mut v, &d_nets, c);
            w.push_cycle(v);
        }
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        let profile = OperationalProfile::collect(&env);
        let faults = generate_fault_list(
            &env,
            &profile,
            &FaultListConfig {
                bitflips_per_zone: 0,
                stuckats_per_zone: 4,
                local_faults_per_zone: 0,
                wide_faults: 0,
                bridge_faults: 0,
                global_faults: false,
                skip_inactive_zones: false,
                collapse: false,
                seed: 1,
            },
        );
        let q_id = zones.zone_by_name("q").unwrap().id;
        let po_id = zones.zone_by_name("po/o").unwrap().id;
        let stuckats_of = |zone| {
            faults
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::StuckAt { .. }) && f.zone == Some(zone))
                .count()
        };
        // both zones keep their full evidence: 2 anchors × 2 polarities
        assert_eq!(stuckats_of(q_id), 4, "faults: {faults:#?}");
        assert_eq!(stuckats_of(po_id), 4, "faults: {faults:#?}");
        // and the merge is recorded on the labels of the later zone
        assert_eq!(
            faults.iter().filter(|f| f.label.contains("shared")).count(),
            4
        );
    }

    #[test]
    fn collapse_config_is_deterministic_and_never_grows_the_list() {
        let (nl, w) = setup();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        let profile = OperationalProfile::collect(&env);
        let cfg = FaultListConfig {
            seed: 7,
            ..FaultListConfig::default()
        };
        let plain = generate_fault_list(&env, &profile, &cfg);
        let collapsed = generate_fault_list(&env, &profile, &cfg.clone().collapse(true));
        assert_eq!(
            collapsed,
            generate_fault_list(&env, &profile, &cfg.clone().collapse(true))
        );
        // structural canonicalisation can only merge more sites
        assert!(collapsed.len() <= plain.len());
        // non-stuck-at faults are untouched by the collapser
        let non_stuck = |fs: &[Fault]| {
            fs.iter()
                .filter(|f| !matches!(f.kind, FaultKind::StuckAt { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(non_stuck(&collapsed), non_stuck(&plain));
    }

    #[test]
    fn display_of_fault_kinds() {
        let s = FaultKind::StuckAt {
            net: NetId(3),
            value: Logic::One,
        }
        .to_string();
        assert_eq!(s, "sa1@n3");
        assert_eq!(
            FaultKind::ClockStuck { cycles: 2 }.to_string(),
            "clock-stuck 2cy"
        );
    }
}
