//! The environment builder: wiring the FMEA into an injection campaign.
//!
//! "Environment builder: this block extracts from the FMEA all the
//! information related to the environment for the injection campaign and
//! builds all the required environment configuration files" (paper §5).

use socfmea_core::{ZoneId, ZoneKind, ZoneSet};
use socfmea_netlist::{NetId, Netlist};
use socfmea_sim::Workload;
use std::collections::BTreeMap;

/// A fully-wired injection environment: design, zones, workload, and the
/// three net groups every monitor needs.
#[derive(Debug)]
pub struct Environment<'a> {
    /// The design under test.
    pub netlist: &'a Netlist,
    /// The FMEA zone set (defines injection targets and observation points).
    pub zones: &'a ZoneSet,
    /// The replayable stimulus.
    pub workload: &'a Workload,
    /// Functional primary outputs — a deviation here is a *dangerous*
    /// failure of the safety function.
    pub functional_outputs: Vec<NetId>,
    /// Diagnostic alarm nets — an assertion here is a *detection*.
    pub alarm_nets: Vec<NetId>,
    /// All observation-point nets (zone anchors + outputs), with the owning
    /// zone of each net for effects attribution.
    pub observation_nets: Vec<NetId>,
    /// Maps observation nets back to their zone.
    pub net_zone: BTreeMap<NetId, ZoneId>,
    /// Cycle window `[start, end)` of a software self-test phase: a
    /// functional mismatch first occurring inside it counts as *detected*
    /// (the SW comparison is the diagnostic).
    pub sw_test_window: Option<(usize, usize)>,
}

impl<'a> Environment<'a> {
    /// The zone owning an observation net, if any.
    pub fn zone_of_net(&self, net: NetId) -> Option<ZoneId> {
        self.net_zone.get(&net).copied()
    }
}

/// Builds an [`Environment`] from the FMEA artefacts.
///
/// By default every primary output is functional; outputs whose name
/// matches an alarm pattern (set with [`alarms_matching`]) are moved to the
/// alarm group instead — matching how the memory sub-system exposes its
/// `alarm_*` pins.
///
/// [`alarms_matching`]: EnvironmentBuilder::alarms_matching
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_faultsim::EnvironmentBuilder;
/// use socfmea_rtl::RtlBuilder;
/// use socfmea_sim::Workload;
///
/// let mut r = RtlBuilder::new("d");
/// let d = r.input_word("d", 2);
/// let q = r.register("q", &d, None, None);
/// let par = r.parity(&q);
/// r.output_word("o", &q);
/// r.output("alarm_parity", par);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let w = Workload::new("idle");
/// let env = EnvironmentBuilder::new(&nl, &zones, &w)
///     .alarms_matching("alarm_")
///     .build();
/// assert_eq!(env.alarm_nets.len(), 1);
/// assert_eq!(env.functional_outputs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EnvironmentBuilder<'a> {
    netlist: &'a Netlist,
    zones: &'a ZoneSet,
    workload: &'a Workload,
    alarm_patterns: Vec<String>,
    extra_alarms: Vec<NetId>,
    sw_test_window: Option<(usize, usize)>,
}

impl<'a> EnvironmentBuilder<'a> {
    /// Starts building an environment over a design, its zones and a
    /// workload.
    pub fn new(
        netlist: &'a Netlist,
        zones: &'a ZoneSet,
        workload: &'a Workload,
    ) -> EnvironmentBuilder<'a> {
        EnvironmentBuilder {
            netlist,
            zones,
            workload,
            alarm_patterns: Vec::new(),
            extra_alarms: Vec::new(),
            sw_test_window: None,
        }
    }

    /// Treats outputs whose name contains `pattern` as diagnostic alarms.
    pub fn alarms_matching(mut self, pattern: impl Into<String>) -> Self {
        self.alarm_patterns.push(pattern.into());
        self
    }

    /// Adds an explicit alarm net.
    pub fn alarm_net(mut self, net: NetId) -> Self {
        self.extra_alarms.push(net);
        self
    }

    /// Declares the cycle window of a software self-test phase; functional
    /// mismatches first seen inside it count as SW-detected.
    pub fn sw_test_window(mut self, window: Option<(usize, usize)>) -> Self {
        self.sw_test_window = window;
        self
    }

    /// Finalises the environment.
    pub fn build(self) -> Environment<'a> {
        let is_alarm = |name: &str| {
            self.alarm_patterns
                .iter()
                .any(|p| name.contains(p.as_str()))
        };
        let mut functional_outputs = Vec::new();
        let mut alarm_nets = self.extra_alarms.clone();
        for &o in self.netlist.outputs() {
            if is_alarm(&self.netlist.net(o).name) {
                alarm_nets.push(o);
            } else {
                functional_outputs.push(o);
            }
        }
        let mut net_zone = BTreeMap::new();
        let mut observation_nets = Vec::new();
        for z in self.zones.zones() {
            // Primary-input zones are stimulus, not observation points.
            if matches!(z.kind, ZoneKind::PrimaryInputGroup { .. }) {
                continue;
            }
            for &a in &z.anchors {
                net_zone.entry(a).or_insert(z.id);
                observation_nets.push(a);
            }
        }
        observation_nets.sort_unstable();
        observation_nets.dedup();
        Environment {
            netlist: self.netlist,
            zones: self.zones,
            workload: self.workload,
            functional_outputs,
            alarm_nets,
            observation_nets,
            net_zone,
            sw_test_window: self.sw_test_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;

    #[test]
    fn observation_nets_cover_zone_anchors_but_not_inputs() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        // q anchors + po anchors observed; pi nets not
        let q0 = nl.net_by_name("q[0]").unwrap();
        let d0 = nl.net_by_name("d[0]").unwrap();
        assert!(env.observation_nets.contains(&q0));
        assert!(!env.observation_nets.contains(&d0));
        let q_zone = zones.zone_by_name("q").unwrap().id;
        assert_eq!(env.zone_of_net(q0), Some(q_zone));
    }

    #[test]
    fn explicit_alarm_nets_are_added() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output_word("o", &q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let flag = nl.net_by_name("flag").unwrap();
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarm_net(flag)
            .build();
        assert!(env.alarm_nets.contains(&flag));
        // but it stays in functional outputs too unless name-matched: the
        // builder only reroutes name-matched outputs.
        assert!(env.functional_outputs.contains(&flag));
    }
}
