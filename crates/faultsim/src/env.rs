//! The environment builder: wiring the FMEA into an injection campaign.
//!
//! "Environment builder: this block extracts from the FMEA all the
//! information related to the environment for the injection campaign and
//! builds all the required environment configuration files" (paper §5).

use socfmea_core::{ZoneId, ZoneKind, ZoneSet};
use socfmea_netlist::{Driver, NetId, Netlist};
use socfmea_sim::Workload;
use std::collections::BTreeMap;

/// A fully-wired injection environment: design, zones, workload, and the
/// three net groups every monitor needs.
#[derive(Debug)]
pub struct Environment<'a> {
    /// The design under test.
    pub netlist: &'a Netlist,
    /// The FMEA zone set (defines injection targets and observation points).
    pub zones: &'a ZoneSet,
    /// The replayable stimulus.
    pub workload: &'a Workload,
    /// Functional primary outputs — a deviation here is a *dangerous*
    /// failure of the safety function.
    pub functional_outputs: Vec<NetId>,
    /// Diagnostic alarm nets — an assertion here is a *detection*.
    pub alarm_nets: Vec<NetId>,
    /// All observation-point nets (zone anchors + outputs), with the owning
    /// zone of each net for effects attribution.
    pub observation_nets: Vec<NetId>,
    /// Maps observation nets back to their zone.
    pub net_zone: BTreeMap<NetId, ZoneId>,
    /// Cycle window `[start, end)` of a software self-test phase: a
    /// functional mismatch first occurring inside it counts as *detected*
    /// (the SW comparison is the diagnostic).
    pub sw_test_window: Option<(usize, usize)>,
}

impl<'a> Environment<'a> {
    /// The zone owning an observation net, if any.
    pub fn zone_of_net(&self, net: NetId) -> Option<ZoneId> {
        self.net_zone.get(&net).copied()
    }

    /// For every net, whether a deviation on it can influence at least one
    /// functional output or alarm net — combinationally or through any
    /// number of flip-flop stages.
    ///
    /// This is the *structural* observability the monitors rely on: a fault
    /// anywhere outside this set can never be seen by the injection
    /// campaign's functional or alarm monitors, no matter the workload.
    /// Computed by a backward walk from the monitored nets across gate
    /// inputs and flip-flop `d`/`enable`/`reset` pins.
    pub fn observable_nets(&self) -> Vec<bool> {
        let mut observable = vec![false; self.netlist.net_count()];
        let mut worklist: Vec<NetId> = Vec::new();
        for &n in self.functional_outputs.iter().chain(&self.alarm_nets) {
            if !observable[n.index()] {
                observable[n.index()] = true;
                worklist.push(n);
            }
        }
        while let Some(n) = worklist.pop() {
            let feeders: Vec<NetId> = match self.netlist.net(n).driver {
                Driver::Gate(g) => self.netlist.gate(g).inputs.clone(),
                Driver::Dff(f) => {
                    let ff = self.netlist.dff(f);
                    let mut v = vec![ff.d];
                    v.extend(ff.enable);
                    v.extend(ff.reset);
                    v
                }
                Driver::Input | Driver::Const(_) | Driver::None => Vec::new(),
            };
            for src in feeders {
                if !observable[src.index()] {
                    observable[src.index()] = true;
                    worklist.push(src);
                }
            }
        }
        observable
    }

    /// Zones with no observation path: none of their anchor nets can reach
    /// a functional output or an alarm net, so no monitor of this
    /// environment can ever witness their failures — a hole in the safety
    /// concept's observability.
    ///
    /// Critical-net zones are excluded: clock roots are implicit in the
    /// cycle-based model (no gate reads them), so the walk cannot see them,
    /// and their supervision (watchdog with separate time base) lives
    /// outside the simulated design anyway.
    pub fn unobservable_zones(&self) -> Vec<ZoneId> {
        let observable = self.observable_nets();
        self.zones
            .zones()
            .iter()
            .filter(|z| !matches!(z.kind, ZoneKind::CriticalNet { .. }))
            .filter(|z| !z.anchors.is_empty() && z.anchors.iter().all(|a| !observable[a.index()]))
            .map(|z| z.id)
            .collect()
    }
}

/// Builds an [`Environment`] from the FMEA artefacts.
///
/// By default every primary output is functional; outputs whose name
/// matches an alarm pattern (set with [`alarms_matching`]) are moved to the
/// alarm group instead — matching how the memory sub-system exposes its
/// `alarm_*` pins.
///
/// [`alarms_matching`]: EnvironmentBuilder::alarms_matching
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_faultsim::EnvironmentBuilder;
/// use socfmea_rtl::RtlBuilder;
/// use socfmea_sim::Workload;
///
/// let mut r = RtlBuilder::new("d");
/// let d = r.input_word("d", 2);
/// let q = r.register("q", &d, None, None);
/// let par = r.parity(&q);
/// r.output_word("o", &q);
/// r.output("alarm_parity", par);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let w = Workload::new("idle");
/// let env = EnvironmentBuilder::new(&nl, &zones, &w)
///     .alarms_matching("alarm_")
///     .build();
/// assert_eq!(env.alarm_nets.len(), 1);
/// assert_eq!(env.functional_outputs.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EnvironmentBuilder<'a> {
    netlist: &'a Netlist,
    zones: &'a ZoneSet,
    workload: &'a Workload,
    alarm_patterns: Vec<String>,
    extra_alarms: Vec<NetId>,
    sw_test_window: Option<(usize, usize)>,
}

impl<'a> EnvironmentBuilder<'a> {
    /// Starts building an environment over a design, its zones and a
    /// workload.
    pub fn new(
        netlist: &'a Netlist,
        zones: &'a ZoneSet,
        workload: &'a Workload,
    ) -> EnvironmentBuilder<'a> {
        EnvironmentBuilder {
            netlist,
            zones,
            workload,
            alarm_patterns: Vec::new(),
            extra_alarms: Vec::new(),
            sw_test_window: None,
        }
    }

    /// Treats outputs whose name contains `pattern` as diagnostic alarms.
    pub fn alarms_matching(mut self, pattern: impl Into<String>) -> Self {
        self.alarm_patterns.push(pattern.into());
        self
    }

    /// Adds an explicit alarm net.
    pub fn alarm_net(mut self, net: NetId) -> Self {
        self.extra_alarms.push(net);
        self
    }

    /// Declares the cycle window of a software self-test phase; functional
    /// mismatches first seen inside it count as SW-detected.
    pub fn sw_test_window(mut self, window: Option<(usize, usize)>) -> Self {
        self.sw_test_window = window;
        self
    }

    /// Finalises the environment.
    pub fn build(self) -> Environment<'a> {
        let is_alarm = |name: &str| {
            self.alarm_patterns
                .iter()
                .any(|p| name.contains(p.as_str()))
        };
        let mut functional_outputs = Vec::new();
        let mut alarm_nets = self.extra_alarms.clone();
        for &o in self.netlist.outputs() {
            if is_alarm(&self.netlist.net(o).name) {
                alarm_nets.push(o);
            } else {
                functional_outputs.push(o);
            }
        }
        let mut net_zone = BTreeMap::new();
        let mut observation_nets = Vec::new();
        for z in self.zones.zones() {
            // Primary-input zones are stimulus, not observation points.
            if matches!(z.kind, ZoneKind::PrimaryInputGroup { .. }) {
                continue;
            }
            for &a in &z.anchors {
                net_zone.entry(a).or_insert(z.id);
                observation_nets.push(a);
            }
        }
        observation_nets.sort_unstable();
        observation_nets.dedup();
        Environment {
            netlist: self.netlist,
            zones: self.zones,
            workload: self.workload,
            functional_outputs,
            alarm_nets,
            observation_nets,
            net_zone,
            sw_test_window: self.sw_test_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_core::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;

    #[test]
    fn observation_nets_cover_zone_anchors_but_not_inputs() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        // q anchors + po anchors observed; pi nets not
        let q0 = nl.net_by_name("q[0]").unwrap();
        let d0 = nl.net_by_name("d[0]").unwrap();
        assert!(env.observation_nets.contains(&q0));
        assert!(!env.observation_nets.contains(&d0));
        let q_zone = zones.zone_by_name("q").unwrap().id;
        assert_eq!(env.zone_of_net(q0), Some(q_zone));
    }

    #[test]
    fn explicit_alarm_nets_are_added() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output_word("o", &q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let flag = nl.net_by_name("flag").unwrap();
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarm_net(flag)
            .build();
        assert!(env.alarm_nets.contains(&flag));
        // but it stays in functional outputs too unless name-matched: the
        // builder only reroutes name-matched outputs.
        assert!(env.functional_outputs.contains(&flag));
    }

    #[test]
    fn unobservable_zones_finds_registers_cut_off_from_all_monitors() {
        // `seen` reaches the output through a second register stage; `lost`
        // feeds nothing — no monitor can ever witness its failures
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let seen = r.register("seen", &d, None, None);
        let stage2 = r.register("stage2", &seen, None, None);
        let _lost = r.register("lost", &d, None, None);
        r.output_word("o", &stage2);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
        let unobservable = env.unobservable_zones();
        let lost = zones.zone_by_name("lost").unwrap().id;
        let seen_id = zones.zone_by_name("seen").unwrap().id;
        assert!(unobservable.contains(&lost), "lost has no path to monitors");
        assert!(
            !unobservable.contains(&seen_id),
            "seen reaches the output across a flip-flop boundary"
        );
        // the input bus feeds `seen` and therefore the output: observable
        let pi = zones.zone_by_name("pi/d").unwrap().id;
        assert!(!unobservable.contains(&pi));
    }

    #[test]
    fn alarm_nets_grant_observability_too() {
        // a register whose only sink is a parity alarm is still observable
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output("alarm_par", p);
        let o = r.input_word("passthru", 1);
        r.output_word("o", &o);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let w = Workload::new("w");
        let env = EnvironmentBuilder::new(&nl, &zones, &w)
            .alarms_matching("alarm_")
            .build();
        let q_zone = zones.zone_by_name("q").unwrap().id;
        assert!(!env.unobservable_zones().contains(&q_zone));
    }
}
