//! Property test: the gate-level memory sub-system and its behavioural
//! twin agree on arbitrary transaction sequences — the strongest evidence
//! that the design the FMEA analyses implements the intended function.

use proptest::prelude::*;
use socfmea_memsys::{build_netlist, config::MemSysConfig, Master, MemSysPins, MemorySubsystem};
use socfmea_netlist::{Logic, Netlist};
use socfmea_sim::Simulator;

#[derive(Debug, Clone, Copy)]
enum Op {
    Write { addr: u8, data: u32 },
    Read { addr: u8 },
}

fn op_strategy(words: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..words, any::<u32>()).prop_map(|(addr, data)| Op::Write { addr, data }),
        (0..words).prop_map(|addr| Op::Read { addr }),
    ]
}

/// Drives the gate-level design through one op; returns read data when the
/// op was a read.
struct GateDriver<'a> {
    sim: Simulator<'a>,
    pins: MemSysPins,
}

impl<'a> GateDriver<'a> {
    fn new(nl: &'a Netlist, cfg: &MemSysConfig) -> GateDriver<'a> {
        let pins = MemSysPins::find(nl, cfg);
        let mut sim = Simulator::new(nl).expect("levelizable");
        sim.set(pins.rst, Logic::One);
        for &n in [
            pins.req,
            pins.wr,
            pins.privilege,
            pins.mpu_wr,
            pins.bist_en,
            pins.err_inject0,
            pins.err_inject1,
        ]
        .iter()
        {
            sim.set(n, Logic::Zero);
        }
        sim.set_word(&pins.addr, 0);
        sim.set_word(&pins.wdata, 0);
        sim.set_word(&pins.mpu_attr, 0);
        sim.tick();
        sim.set(pins.rst, Logic::Zero);
        sim.tick();
        GateDriver { sim, pins }
    }

    fn apply(&mut self, op: Op) -> Option<u32> {
        match op {
            Op::Write { addr, data } => {
                self.sim.set(self.pins.req, Logic::One);
                self.sim.set(self.pins.wr, Logic::One);
                self.sim.set(self.pins.privilege, Logic::One);
                self.sim.set_word(&self.pins.addr, addr as u64);
                self.sim.set_word(&self.pins.wdata, data as u64);
                self.sim.tick();
                self.idle(2);
                None
            }
            Op::Read { addr } => {
                self.sim.set(self.pins.req, Logic::One);
                self.sim.set(self.pins.wr, Logic::Zero);
                self.sim.set(self.pins.privilege, Logic::One);
                self.sim.set_word(&self.pins.addr, addr as u64);
                self.sim.tick();
                self.sim.set(self.pins.req, Logic::Zero);
                let mut data = None;
                for _ in 0..4 {
                    self.sim.tick();
                    if self.sim.get(self.pins.rvalid) == Logic::One {
                        data = self.sim.get_word(&self.pins.rdata).map(|v| v as u32);
                    }
                }
                data
            }
        }
    }

    fn idle(&mut self, n: usize) {
        self.sim.set(self.pins.req, Logic::Zero);
        self.sim.set(self.pins.wr, Logic::Zero);
        for _ in 0..n {
            self.sim.tick();
        }
    }
}

/// A software reference that only models the architectural contract:
/// last-write-wins per address; reads of never-written words return the
/// reset value 0.
fn reference(ops: &[Op]) -> Vec<Option<u32>> {
    let mut mem = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for &op in ops {
        match op {
            Op::Write { addr, data } => {
                mem.insert(addr, data);
            }
            Op::Read { addr } => out.push(Some(*mem.get(&addr).unwrap_or(&0))),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gate_level_matches_the_architectural_contract(
        ops in prop::collection::vec(op_strategy(16), 1..24),
        hardened: bool,
    ) {
        let cfg = if hardened {
            MemSysConfig::hardened().with_words(16)
        } else {
            MemSysConfig::baseline().with_words(16)
        };
        let nl = build_netlist(&cfg).expect("valid design");
        let mut gate = GateDriver::new(&nl, &cfg);
        // initialise every word: an unwritten row is not a valid code word
        // under address folding (reads would flag uncorrectable)
        for addr in 0..16 {
            gate.apply(Op::Write { addr, data: 0 });
        }
        let got: Vec<Option<u32>> = ops
            .iter()
            .filter_map(|&op| match op {
                Op::Read { .. } => Some(gate.apply(op)),
                Op::Write { .. } => {
                    gate.apply(op);
                    None
                }
            })
            .collect();
        prop_assert_eq!(got, reference(&ops));
    }

    #[test]
    fn behavioural_model_matches_the_same_contract(
        ops in prop::collection::vec(op_strategy(32), 1..40),
        hardened: bool,
    ) {
        let cfg = if hardened {
            MemSysConfig::hardened()
        } else {
            MemSysConfig::baseline()
        };
        let mut sys = MemorySubsystem::new(cfg);
        for addr in 0..32 {
            sys.bus_write(addr, 0, Master::Cpu, true).expect("open pages");
        }
        let mut got = Vec::new();
        for &op in &ops {
            match op {
                Op::Write { addr, data } => {
                    sys.bus_write(addr as u32, data, Master::Cpu, true).expect("open pages");
                }
                Op::Read { addr } => {
                    got.push(sys.bus_read(addr as u32, Master::Cpu, true).ok());
                }
            }
        }
        prop_assert_eq!(got, reference(&ops));
        // fault-free runs never alarm
        prop_assert_eq!(sys.alarms().total(), 0);
    }
}
