//! Property tests for the SEC-DED codec — the invariants the whole safety
//! argument rests on.

use proptest::prelude::*;
use socfmea_memsys::ecc::{Codec, DecodeStatus, CODE_BITS};

proptest! {
    /// Every encode/decode round trip is clean and restores the data.
    #[test]
    fn round_trip_is_clean(data: u32, addr in 0u32..(1 << 20), fold: bool) {
        let codec = Codec::new(fold);
        let d = codec.decode(codec.encode(data, addr), addr);
        prop_assert_eq!(d.status, DecodeStatus::Clean);
        prop_assert_eq!(d.data, data);
        prop_assert_eq!(d.syndrome, 0);
    }

    /// Any single-bit upset anywhere in the code word is corrected back to
    /// the original data (SEC).
    #[test]
    fn single_bit_errors_corrected(
        data: u32,
        addr in 0u32..(1 << 20),
        fold: bool,
        bit in 0usize..CODE_BITS,
    ) {
        let codec = Codec::new(fold);
        let upset = codec.encode(data, addr) ^ (1u64 << bit);
        let d = codec.decode(upset, addr);
        prop_assert_eq!(d.status, DecodeStatus::Corrected(bit as u8));
        prop_assert_eq!(d.data, data);
    }

    /// Any double-bit error is detected and never mis-corrected (DED).
    #[test]
    fn double_bit_errors_detected(
        data: u32,
        addr in 0u32..(1 << 20),
        fold: bool,
        i in 0usize..CODE_BITS,
        j in 0usize..CODE_BITS,
    ) {
        prop_assume!(i != j);
        let codec = Codec::new(fold);
        let upset = codec.encode(data, addr) ^ (1u64 << i) ^ (1u64 << j);
        let d = codec.decode(upset, addr);
        prop_assert_eq!(d.status, DecodeStatus::DetectedUncorrectable);
    }

    /// With address folding, a *single-bit* address error is always
    /// detected and never mis-corrected: the signature difference is a
    /// weight-4 (even) vector, which is nonzero and collides with no
    /// (odd-weight) H column.
    #[test]
    fn single_bit_address_faults_always_detected(
        data: u32,
        addr in 0u32..(1 << 16),
        bit in 0u32..16,
    ) {
        let wrong = addr ^ (1 << bit);
        let codec = Codec::new(true);
        let d = codec.decode(codec.encode(data, addr), wrong);
        prop_assert_eq!(d.status, DecodeStatus::DetectedUncorrectable);
    }

    /// Signature differences are always even-weight, so an addressing
    /// fault is never mis-corrected; beyond six address bits it may alias
    /// to a Clean decode of the stored (original) data.
    #[test]
    fn wrong_address_is_never_silently_returned_as_clean_data(
        data: u32,
        addr in 0u32..64,
        wrong in 0u32..64,
    ) {
        prop_assume!(addr != wrong);
        let codec = Codec::new(true);
        let d = codec.decode(codec.encode(data, addr), wrong);
        // either detected/corrected (visible) or — rarely — aliased; an
        // aliased Clean decode must at least return the stored data
        if d.status == DecodeStatus::Clean {
            prop_assert_eq!(d.data, data);
        }
    }

    /// Without folding the same addressing fault is invisible — the hole
    /// the paper's hardening closes.
    #[test]
    fn without_folding_wrong_address_is_silent(
        data: u32,
        addr in 0u32..(1 << 16),
        wrong in 0u32..(1 << 16),
    ) {
        let codec = Codec::new(false);
        let d = codec.decode(codec.encode(data, addr), wrong);
        prop_assert_eq!(d.status, DecodeStatus::Clean);
        prop_assert_eq!(d.data, data);
    }
}

/// Exhaustive census over a 64-word space: the six signature basis columns
/// are linearly independent, so *every* wrong-address pair must be flagged
/// as detected-uncorrectable — the quantitative basis of the
/// `AddressInCode` DDF claim in the memory sub-system FMEA.
#[test]
fn address_alias_census() {
    let codec = Codec::new(true);
    let data = 0x1234_5678;
    let (mut total, mut visible) = (0u32, 0u32);
    for addr in 0u32..64 {
        let code = codec.encode(data, addr);
        for wrong in 0u32..64 {
            if addr == wrong {
                continue;
            }
            total += 1;
            if codec.decode(code, wrong).status == DecodeStatus::DetectedUncorrectable {
                visible += 1;
            }
        }
    }
    let fraction = visible as f64 / total as f64;
    assert!(
        (fraction - 1.0).abs() < 1e-12,
        "within 64 words every addressing fault must be detected, got {fraction:.3}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memory fault models compose: a remap plus stuck bits still obeys
    /// read-after-write through the faulty paths.
    #[test]
    fn faulty_memory_remap_consistency(
        from in 0u32..8,
        to in 0u32..8,
        value: u64,
    ) {
        prop_assume!(from != to);
        let mut mem = socfmea_memsys::memory::FaultyMemory::new(8);
        mem.inject_addressing(socfmea_memsys::memory::AddressingFault::Remap { from, to });
        mem.write(from, value);
        prop_assert_eq!(mem.read(from), value);
        prop_assert_eq!(mem.read(to), value);
    }
}
