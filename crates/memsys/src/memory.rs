//! A behavioural memory array with the fault models of IEC 61508 table A.1
//! and of the cache-scrubbing literature the paper cites ([13–15]).
//!
//! Injectable faults: stuck cells (DC fault model), soft errors (bit flips),
//! addressing faults (no / wrong / multiple addressing) and dynamic
//! cross-over (a write to one cell disturbs another).

use std::collections::BTreeMap;

/// An addressing-fault mode of the address decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressingFault {
    /// Accesses to `from` silently go to `to` instead (wrong addressing).
    Remap {
        /// The logical address affected.
        from: u32,
        /// The physical row actually accessed.
        to: u32,
    },
    /// Writes to `from` also write `to` (multiple addressing).
    MultiWrite {
        /// The logical address written.
        from: u32,
        /// The extra row disturbed.
        to: u32,
    },
    /// Accesses to `from` select no row: writes are lost, reads return the
    /// floating value `0` (no addressing).
    NoSelect {
        /// The dead address.
        from: u32,
    },
}

/// Dynamic cross-over: writing `victim_bit` of `aggressor` row couples into
/// `victim` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossOver {
    /// Row whose write triggers the disturbance.
    pub aggressor: u32,
    /// Row whose cell is disturbed.
    pub victim: u32,
    /// Bit flipped in the victim row on every aggressor write.
    pub victim_bit: u8,
}

/// A word-organised memory array with injectable faults.
///
/// Words are stored as raw code words (up to 64 bits) — the array does not
/// know about ECC; protection lives in the sub-system around it, exactly as
/// in Figure 5.
///
/// # Example
///
/// ```
/// use socfmea_memsys::memory::FaultyMemory;
///
/// let mut mem = FaultyMemory::new(16);
/// mem.write(3, 0xabcd);
/// assert_eq!(mem.read(3), 0xabcd);
/// mem.inject_stuck_bit(3, 0, true); // cell (3,0) stuck high
/// assert_eq!(mem.read(3), 0xabcd | 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyMemory {
    words: Vec<u64>,
    stuck: BTreeMap<(u32, u8), bool>,
    addressing: Vec<AddressingFault>,
    crossovers: Vec<CrossOver>,
}

impl FaultyMemory {
    /// Creates a zero-initialised memory of `words` rows.
    pub fn new(words: usize) -> FaultyMemory {
        FaultyMemory {
            words: vec![0; words],
            stuck: BTreeMap::new(),
            addressing: Vec::new(),
            crossovers: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True for an empty array.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn resolve(&self, addr: u32, write: bool) -> (Option<u32>, Vec<u32>) {
        // returns (primary row, extra rows written)
        let mut primary = Some(addr);
        let mut extra = Vec::new();
        for f in &self.addressing {
            match *f {
                AddressingFault::Remap { from, to } if from == addr => primary = Some(to),
                AddressingFault::NoSelect { from } if from == addr => primary = None,
                AddressingFault::MultiWrite { from, to } if write && from == addr => extra.push(to),
                _ => {}
            }
        }
        (primary, extra)
    }

    fn apply_stuck(&self, row: u32, mut value: u64) -> u64 {
        for (&(r, bit), &high) in &self.stuck {
            if r == row {
                if high {
                    value |= 1 << bit;
                } else {
                    value &= !(1 << bit);
                }
            }
        }
        value
    }

    /// Writes a code word, honouring injected faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u32, value: u64) {
        assert!((addr as usize) < self.words.len(), "address out of range");
        let (primary, extra) = self.resolve(addr, true);
        if let Some(row) = primary {
            self.words[row as usize] = self.apply_stuck(row, value);
            let hits: Vec<CrossOver> = self
                .crossovers
                .iter()
                .copied()
                .filter(|c| c.aggressor == row)
                .collect();
            for c in hits {
                self.words[c.victim as usize] ^= 1 << c.victim_bit;
            }
        }
        for row in extra {
            self.words[row as usize] = self.apply_stuck(row, value);
        }
    }

    /// Reads a code word, honouring injected faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: u32) -> u64 {
        assert!((addr as usize) < self.words.len(), "address out of range");
        let (primary, _) = self.resolve(addr, false);
        match primary {
            Some(row) => self.apply_stuck(row, self.words[row as usize]),
            None => 0,
        }
    }

    /// Flips one stored bit (soft error / SEU).
    pub fn inject_soft_error(&mut self, addr: u32, bit: u8) {
        self.words[addr as usize] ^= 1 << bit;
    }

    /// Injects a stuck cell.
    pub fn inject_stuck_bit(&mut self, addr: u32, bit: u8, high: bool) {
        self.stuck.insert((addr, bit), high);
    }

    /// Injects an addressing fault.
    pub fn inject_addressing(&mut self, fault: AddressingFault) {
        self.addressing.push(fault);
    }

    /// Injects a dynamic cross-over coupling.
    pub fn inject_crossover(&mut self, fault: CrossOver) {
        self.crossovers.push(fault);
    }

    /// Removes all injected faults (stored corruption persists — exactly
    /// like repairing the decoder does not repair the data).
    pub fn clear_faults(&mut self) {
        self.stuck.clear();
        self.addressing.clear();
        self.crossovers.clear();
    }

    /// Number of currently injected faults.
    pub fn fault_count(&self) -> usize {
        self.stuck.len() + self.addressing.len() + self.crossovers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_read_write() {
        let mut m = FaultyMemory::new(8);
        assert_eq!(m.len(), 8);
        assert!(!m.is_empty());
        m.write(7, u64::MAX);
        assert_eq!(m.read(7), u64::MAX);
        assert_eq!(m.read(0), 0);
    }

    #[test]
    fn stuck_bits_dominate() {
        let mut m = FaultyMemory::new(4);
        m.inject_stuck_bit(1, 3, false);
        m.write(1, 0xff);
        assert_eq!(m.read(1), 0xff & !(1 << 3));
        m.inject_stuck_bit(1, 0, true);
        m.write(1, 0);
        assert_eq!(m.read(1), 1);
        assert_eq!(m.fault_count(), 2);
    }

    #[test]
    fn remap_redirects_both_ways() {
        let mut m = FaultyMemory::new(4);
        m.inject_addressing(AddressingFault::Remap { from: 0, to: 2 });
        m.write(0, 0xaa);
        assert_eq!(m.read(2), 0xaa); // actually landed in row 2
        assert_eq!(m.read(0), 0xaa); // and reads come from row 2 as well
        m.write(2, 0x55);
        assert_eq!(m.read(0), 0x55);
    }

    #[test]
    fn multi_write_disturbs_second_row() {
        let mut m = FaultyMemory::new(4);
        m.write(3, 0x11);
        m.inject_addressing(AddressingFault::MultiWrite { from: 1, to: 3 });
        m.write(1, 0xff);
        assert_eq!(m.read(1), 0xff);
        assert_eq!(m.read(3), 0xff, "row 3 overwritten by multiple addressing");
    }

    #[test]
    fn no_select_loses_writes() {
        let mut m = FaultyMemory::new(4);
        m.write(1, 0x77);
        m.inject_addressing(AddressingFault::NoSelect { from: 1 });
        m.write(1, 0xff);
        assert_eq!(m.read(1), 0); // floating read
        m.clear_faults();
        assert_eq!(m.read(1), 0x77, "the old value was never overwritten");
    }

    #[test]
    fn crossover_flips_victim_on_aggressor_write() {
        let mut m = FaultyMemory::new(4);
        m.write(2, 0);
        m.inject_crossover(CrossOver {
            aggressor: 0,
            victim: 2,
            victim_bit: 5,
        });
        m.write(0, 1);
        assert_eq!(m.read(2), 1 << 5);
        m.write(0, 2);
        assert_eq!(m.read(2), 0, "second write flips it back");
    }

    #[test]
    fn soft_error_flips_one_bit() {
        let mut m = FaultyMemory::new(2);
        m.write(0, 0b1000);
        m.inject_soft_error(0, 3);
        assert_eq!(m.read(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_is_rejected() {
        let m = FaultyMemory::new(2);
        let _ = m.read(5);
    }
}
