//! RAM march tests — the start-up memory self-test of Annex A table A.6.
//!
//! The paper's worksheet credits "RAM test march / galpat at start-up" with
//! high coverage; this module implements **March C−** (the industry-default
//! 10n march) over the behavioural array so the claim can be demonstrated
//! against every injected fault model:
//!
//! ```text
//! ⇕ (w0);  ⇑ (r0,w1);  ⇑ (r1,w0);  ⇓ (r0,w1);  ⇓ (r1,w0);  ⇕ (r0)
//! ```
//!
//! March C− detects all stuck-at cells, addressing faults (address decoder
//! opens/shorts) and state coupling faults — exactly the variable-memory
//! failure modes IEC 61508 requires (DC fault model, wrong addressing,
//! cross-over).

use crate::memory::FaultyMemory;

/// Bit width the march patterns cover (the full 39-bit code word rows).
pub const MARCH_BITS: usize = 39;

/// One detected discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarchFailure {
    /// The element of March C− that caught it (0–5).
    pub element: u8,
    /// The failing row address.
    pub addr: u32,
    /// Expected row value.
    pub expected: u64,
    /// Read-back value.
    pub got: u64,
}

/// The result of one march run.
#[derive(Debug, Clone, Default)]
pub struct MarchReport {
    /// All discrepancies, in detection order.
    pub failures: Vec<MarchFailure>,
    /// Total read operations performed.
    pub reads: u64,
    /// Total write operations performed.
    pub writes: u64,
}

impl MarchReport {
    /// True when the array passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn all_ones() -> u64 {
    (1u64 << MARCH_BITS) - 1
}

/// Runs March C− over the array. The test is destructive (the array is
/// left all-zero on a fault-free pass) — it is a *start-up* test.
///
/// # Example
///
/// ```
/// use socfmea_memsys::march::march_c_minus;
/// use socfmea_memsys::memory::FaultyMemory;
///
/// let mut mem = FaultyMemory::new(16);
/// assert!(march_c_minus(&mut mem).passed());
/// mem.inject_stuck_bit(5, 7, true);
/// assert!(!march_c_minus(&mut mem).passed());
/// ```
pub fn march_c_minus(mem: &mut FaultyMemory) -> MarchReport {
    let n = mem.len() as u32;
    let ones = all_ones();
    let mut report = MarchReport::default();
    let check =
        |report: &mut MarchReport, mem: &FaultyMemory, element: u8, addr: u32, expected: u64| {
            report.reads += 1;
            let got = mem.read(addr) & ones;
            if got != expected {
                report.failures.push(MarchFailure {
                    element,
                    addr,
                    expected,
                    got,
                });
            }
        };

    // ⇕ (w0)
    for a in 0..n {
        mem.write(a, 0);
        report.writes += 1;
    }
    // ⇑ (r0, w1)
    for a in 0..n {
        check(&mut report, mem, 1, a, 0);
        mem.write(a, ones);
        report.writes += 1;
    }
    // ⇑ (r1, w0)
    for a in 0..n {
        check(&mut report, mem, 2, a, ones);
        mem.write(a, 0);
        report.writes += 1;
    }
    // ⇓ (r0, w1)
    for a in (0..n).rev() {
        check(&mut report, mem, 3, a, 0);
        mem.write(a, ones);
        report.writes += 1;
    }
    // ⇓ (r1, w0)
    for a in (0..n).rev() {
        check(&mut report, mem, 4, a, ones);
        mem.write(a, 0);
        report.writes += 1;
    }
    // ⇕ (r0)
    for a in 0..n {
        check(&mut report, mem, 5, a, 0);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{AddressingFault, CrossOver};

    #[test]
    fn clean_memory_passes_with_10n_complexity() {
        let mut mem = FaultyMemory::new(32);
        let r = march_c_minus(&mut mem);
        assert!(r.passed());
        assert_eq!(r.reads, 5 * 32);
        assert_eq!(r.writes, 5 * 32);
    }

    #[test]
    fn every_stuck_cell_polarity_is_caught() {
        for high in [false, true] {
            for bit in [0u8, 17, 38] {
                let mut mem = FaultyMemory::new(16);
                mem.inject_stuck_bit(9, bit, high);
                let r = march_c_minus(&mut mem);
                assert!(!r.passed(), "stuck-at-{high} bit {bit} must fail the march");
                assert!(r.failures.iter().all(|f| f.addr == 9));
            }
        }
    }

    #[test]
    fn addressing_faults_are_caught() {
        for fault in [
            AddressingFault::Remap { from: 3, to: 11 },
            AddressingFault::MultiWrite { from: 2, to: 7 },
            AddressingFault::NoSelect { from: 5 },
        ] {
            let mut mem = FaultyMemory::new(16);
            mem.inject_addressing(fault);
            assert!(
                !march_c_minus(&mut mem).passed(),
                "addressing fault {fault:?} must fail the march"
            );
        }
    }

    #[test]
    fn coupling_faults_are_caught() {
        let mut mem = FaultyMemory::new(16);
        mem.inject_crossover(CrossOver {
            aggressor: 4,
            victim: 12,
            victim_bit: 3,
        });
        assert!(!march_c_minus(&mut mem).passed());
    }

    #[test]
    fn failure_records_identify_the_element() {
        let mut mem = FaultyMemory::new(8);
        mem.inject_stuck_bit(0, 0, true);
        let r = march_c_minus(&mut mem);
        let first = r.failures.first().expect("caught");
        assert_eq!(first.addr, 0);
        assert_eq!(first.element, 1, "r0 of element 1 sees the stuck-1 first");
        assert_eq!(first.expected, 0);
        assert_eq!(first.got & 1, 1);
    }
}
