//! The distributed memory-protection function of the MCE.
//!
//! "This MPU function considers that the memory is divided in number of
//! pages associated with attributes and permissions. The MCE block uses
//! signals from the bus ... to discriminate these attributes and
//! permissions and in case of faults, proper alarms are generated" (§6).

use std::fmt;

/// Who issues a bus access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Master {
    /// The application CPU.
    Cpu,
    /// The scrubbing DMA engine inside the protection IP.
    ScrubDma,
}

/// Access attributes of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePermissions {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Only privileged masters may touch the page.
    pub privileged_only: bool,
}

impl Default for PagePermissions {
    fn default() -> PagePermissions {
        PagePermissions {
            read: true,
            write: true,
            privileged_only: false,
        }
    }
}

/// Why an access was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuViolation {
    /// Read of a non-readable page.
    ReadDenied,
    /// Write of a non-writable page.
    WriteDenied,
    /// Unprivileged access to a privileged page.
    PrivilegeDenied,
}

impl fmt::Display for MpuViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MpuViolation::ReadDenied => "read denied",
            MpuViolation::WriteDenied => "write denied",
            MpuViolation::PrivilegeDenied => "privilege denied",
        })
    }
}

impl std::error::Error for MpuViolation {}

/// The paged MPU.
///
/// # Example
///
/// ```
/// use socfmea_memsys::mpu::{Master, Mpu, MpuViolation, PagePermissions};
///
/// let mut mpu = Mpu::new(4, 8); // 4 pages of 8 words
/// mpu.set_page(1, PagePermissions { read: true, write: false, privileged_only: false });
/// assert!(mpu.check(9, true, Master::Cpu, false).is_err()); // write into page 1
/// assert!(mpu.check(9, false, Master::Cpu, false).is_ok());
/// # let _: Result<(), MpuViolation> = Ok(());
/// ```
#[derive(Debug, Clone)]
pub struct Mpu {
    pages: Vec<PagePermissions>,
    words_per_page: u32,
}

impl Mpu {
    /// Creates an MPU with `pages` pages of `words_per_page` words, all
    /// fully accessible.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(pages: usize, words_per_page: u32) -> Mpu {
        assert!(
            pages > 0 && words_per_page > 0,
            "MPU dimensions must be positive"
        );
        Mpu {
            pages: vec![PagePermissions::default(); pages],
            words_per_page,
        }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page an address belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the address lies beyond the last page.
    pub fn page_of(&self, addr: u32) -> usize {
        let p = (addr / self.words_per_page) as usize;
        assert!(p < self.pages.len(), "address {addr} beyond MPU range");
        p
    }

    /// Sets one page's permissions.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_page(&mut self, page: usize, perm: PagePermissions) {
        self.pages[page] = perm;
    }

    /// Reads one page's permissions.
    pub fn page(&self, page: usize) -> PagePermissions {
        self.pages[page]
    }

    /// Checks an access; the scrubbing DMA is always privileged (it belongs
    /// to the protection IP).
    ///
    /// # Errors
    ///
    /// Returns the violation when the access must be denied (and an alarm
    /// raised).
    pub fn check(
        &self,
        addr: u32,
        write: bool,
        master: Master,
        privileged: bool,
    ) -> Result<(), MpuViolation> {
        let perm = self.pages[self.page_of(addr)];
        let privileged = privileged || master == Master::ScrubDma;
        if perm.privileged_only && !privileged {
            return Err(MpuViolation::PrivilegeDenied);
        }
        if write && !perm.write {
            return Err(MpuViolation::WriteDenied);
        }
        if !write && !perm.read {
            return Err(MpuViolation::ReadDenied);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pages_allow_everything() {
        let mpu = Mpu::new(2, 4);
        assert_eq!(mpu.page_count(), 2);
        for addr in 0..8 {
            assert!(mpu.check(addr, true, Master::Cpu, false).is_ok());
            assert!(mpu.check(addr, false, Master::Cpu, false).is_ok());
        }
    }

    #[test]
    fn page_mapping() {
        let mpu = Mpu::new(4, 8);
        assert_eq!(mpu.page_of(0), 0);
        assert_eq!(mpu.page_of(7), 0);
        assert_eq!(mpu.page_of(8), 1);
        assert_eq!(mpu.page_of(31), 3);
    }

    #[test]
    fn write_protection() {
        let mut mpu = Mpu::new(2, 4);
        mpu.set_page(
            0,
            PagePermissions {
                read: true,
                write: false,
                privileged_only: false,
            },
        );
        assert_eq!(
            mpu.check(1, true, Master::Cpu, true),
            Err(MpuViolation::WriteDenied)
        );
        assert!(mpu.check(1, false, Master::Cpu, false).is_ok());
    }

    #[test]
    fn privilege_protection_and_dma_exception() {
        let mut mpu = Mpu::new(2, 4);
        mpu.set_page(
            1,
            PagePermissions {
                read: true,
                write: true,
                privileged_only: true,
            },
        );
        assert_eq!(
            mpu.check(5, false, Master::Cpu, false),
            Err(MpuViolation::PrivilegeDenied)
        );
        assert!(mpu.check(5, false, Master::Cpu, true).is_ok());
        // the scrub DMA is part of the protection IP: always privileged
        assert!(mpu.check(5, true, Master::ScrubDma, false).is_ok());
    }

    #[test]
    fn read_protection() {
        let mut mpu = Mpu::new(1, 4);
        mpu.set_page(
            0,
            PagePermissions {
                read: false,
                write: true,
                privileged_only: false,
            },
        );
        assert_eq!(
            mpu.check(0, false, Master::Cpu, false),
            Err(MpuViolation::ReadDenied)
        );
    }

    #[test]
    #[should_panic(expected = "beyond MPU range")]
    fn out_of_range_address_panics() {
        let mpu = Mpu::new(2, 4);
        let _ = mpu.page_of(100);
    }
}
