//! Gate-level generator for the Figure 5 memory sub-system.
//!
//! The FMEA flow of the paper runs on the *synthesized* design; this module
//! plays the synthesis role and elaborates the complete sub-system —
//! memory controller, memory array, F-MEM (coder/decoder with pipeline,
//! optional checkers, alarms) and MCE (address latch, write buffer, MPU) —
//! into the primitive gate netlist the extraction tool, simulator and fault
//! injector consume.
//!
//! Block paths follow Figure 5 so zones group naturally:
//!
//! ```text
//! mce/mpu        page attribute registers + permission check
//! mce/addr       address latches (read + write paths)
//! fmem/wbuf      write buffer (data, optional parity)
//! fmem/coder     ECC encoder (+ optional output checker)
//! mem/array      the word registers, write decode, read mux
//! fmem/decoder/syn    stage-1 syndrome trees
//! fmem/decoder/pipe   the decoder pipeline registers
//! fmem/decoder/corr   stage-2 correction (+ optional redundant checker,
//!                     distributed syndrome split)
//! ctrl           read-pipeline state, rdata/rvalid output registers, BIST
//! ```
//!
//! ## Interface (cycle-based)
//!
//! | port | dir | meaning |
//! |---|---|---|
//! | `clk`, `rst` | in | clock (critical net) and sync reset |
//! | `req`, `wr` | in | access strobe / write-not-read |
//! | `addr[A]`, `wdata[32]` | in | address and write data |
//! | `priv` | in | privileged access |
//! | `mpu_wr`, `mpu_attr[3]` | in | page attribute write (page = addr page bits); attr = `{rd_en, wr_en, priv_only}` |
//! | `bist_en` | in | runs the self-checking BIST counters |
//! | `rdata[32]`, `rvalid` | out | read data, valid 3 cycles after `req` |
//! | `alarm_*` | out | diagnostic alarms (corrected, uncorr, wbuf, coder, pipe, mpu, bist, syn_data, syn_check) |
//!
//! A read takes three cycles: address latch → syndrome + pipeline →
//! correction + output register. A write takes two: write buffer → encode
//! and store.

use crate::config::MemSysConfig;
use crate::ecc;
use socfmea_netlist::{Netlist, NetlistError};
use socfmea_rtl::{RtlBuilder, Word};

/// Elaborates the memory sub-system into a gate-level netlist.
///
/// # Errors
///
/// Propagates netlist validation errors (none occur for a valid
/// [`MemSysConfig`]).
///
/// # Example
///
/// ```
/// use socfmea_memsys::config::MemSysConfig;
/// use socfmea_memsys::rtl::build_netlist;
///
/// let nl = build_netlist(&MemSysConfig::hardened())?;
/// assert!(nl.dff_count() > 32 * 39); // the array dominates
/// assert!(nl.net_by_name("alarm_uncorr").is_some());
/// # Ok::<(), socfmea_netlist::NetlistError>(())
/// ```
#[allow(clippy::needless_range_loop)] // check-bit loops index parallel tap tables
pub fn build_netlist(cfg: &MemSysConfig) -> Result<Netlist, NetlistError> {
    cfg.validate();
    let abits = cfg.addr_bits();
    let pbits = cfg.page_bits();
    let mut r = RtlBuilder::new("memsys");

    // ---------------- ports -------------------------------------------
    let _clk = r.clock_input("clk");
    let rst = r.reset_input("rst");
    let req = r.input("req");
    let wr = r.input("wr");
    let addr = r.input_word("addr", abits);
    let wdata = r.input_word("wdata", 32);
    let privilege = r.input("priv");
    let mpu_wr = r.input("mpu_wr");
    let mpu_attr = r.input_word("mpu_attr", 3);
    let bist_en = r.input("bist_en");
    // Diagnostic error-injection port (standard feature of production ECC
    // IP): flips read-path code bit 0 / check bit 6 so self-test workloads
    // can exercise the correction and detection paths without hardware
    // faults. Asserting both injects an uncorrectable double error.
    let err_inject0 = r.input("err_inject0");
    let err_inject1 = r.input("err_inject1");

    // ---------------- MCE: MPU ----------------------------------------
    r.push_block("mce");
    r.push_block("mpu");
    let page_idx: Word = (0..pbits.max(1))
        .map(|i| {
            if pbits == 0 {
                // single page: constant select
                addr.bit(0)
            } else {
                addr.bit(abits - pbits + i)
            }
        })
        .collect();
    let page_sel = if pbits == 0 {
        let one = r.constant_bit(true);
        Word::new(vec![one])
    } else {
        r.decoder(&page_idx)
    };
    // attribute registers: reset to {rd_en=1, wr_en=1, priv_only=0} = 0b011
    let mut attrs: Vec<Word> = Vec::with_capacity(cfg.pages);
    for p in 0..cfg.pages {
        let en = r.and2_bit(mpu_wr, page_sel.bit(p));
        let q = r.register_rv(
            &format!("page{p}_attr"),
            &mpu_attr,
            Some(en),
            Some(rst),
            0b011,
        );
        attrs.push(q);
    }
    let cur_attr = if pbits == 0 {
        attrs[0].clone()
    } else {
        r.mux_tree(&page_idx, &attrs)
    };
    let rd_en = cur_attr.bit(0);
    let wr_en = cur_attr.bit(1);
    let priv_only = cur_attr.bit(2);
    let n_wr = r.not_bit(wr);
    let n_wr_en = r.not_bit(wr_en);
    let n_rd_en = r.not_bit(rd_en);
    let n_priv = r.not_bit(privilege);
    let v_write = r.and_bits(&[req, wr, n_wr_en]);
    let v_read = r.and_bits(&[req, n_wr, n_rd_en]);
    let v_priv = r.and_bits(&[req, priv_only, n_priv]);
    let viol = r.or_bits(&[v_write, v_read, v_priv]);
    let alarm_mpu = r.register_bit("alarm_mpu_q", viol, None, Some(rst));
    let n_viol = r.not_bit(viol);
    let grant = r.and_bits(&[req, n_viol]);
    r.pop_block(); // mpu

    // ---------------- MCE: address latches ----------------------------
    // With address-in-ECC, the latches are duplicated: the data path (word
    // select / write decode) uses the primary copy while the code fold uses
    // the shadow copy, so corruption of either register alone leaves an
    // inconsistent code word the decoder detects. Folding from the same
    // register would silently follow its corruption.
    r.push_block("addr");
    let wr_grant = r.and2_bit(grant, wr);
    let rd_grant = r.and2_bit(grant, n_wr);
    let addr_q = r.register("rd_addr_q", &addr, Some(rd_grant), None);
    let wbuf_addr = r.register("wr_addr_q", &addr, Some(wr_grant), None);
    let (addr_fold, wbuf_fold) = if cfg.address_in_ecc {
        (
            r.register("rd_addr_shadow", &addr, Some(rd_grant), None),
            r.register("wr_addr_shadow", &addr, Some(wr_grant), None),
        )
    } else {
        (addr_q.clone(), wbuf_addr.clone())
    };
    r.pop_block(); // addr
    r.pop_block(); // mce

    // ---------------- F-MEM: write buffer ------------------------------
    r.push_block("fmem");
    r.push_block("wbuf");
    let wbuf_data = r.register("wbuf_data", &wdata, Some(wr_grant), None);
    let wbuf_valid = r.register_bit("wbuf_valid", wr_grant, None, Some(rst));
    let wbuf_err = if cfg.write_buffer_parity {
        let par_in = r.parity(&wdata);
        let wbuf_par = r.register_bit("wbuf_par", par_in, Some(wr_grant), None);
        let par_now = r.parity(&wbuf_data);
        let mismatch = r.xor2_bit(par_now, wbuf_par);
        r.and2_bit(mismatch, wbuf_valid)
    } else {
        r.constant_bit(false)
    };
    let alarm_wbuf = r.register_bit("alarm_wbuf_q", wbuf_err, None, Some(rst));
    let n_wbuf_err = r.not_bit(wbuf_err);
    let wr_strobe = r.and2_bit(wbuf_valid, n_wbuf_err);
    r.pop_block(); // wbuf

    // ---------------- F-MEM: coder -------------------------------------
    r.push_block("coder");
    // per check bit j, the address bits folded into it
    fn fold(a: &Word) -> Vec<Vec<socfmea_netlist::NetId>> {
        (0..ecc::CHECK_BITS)
            .map(|j| {
                (0..a.width())
                    .filter(|&k| (ecc::addr_column(k) >> j) & 1 == 1)
                    .map(|k| a.bit(k))
                    .collect()
            })
            .collect()
    }
    let mut enc_checks = Vec::with_capacity(ecc::CHECK_BITS);
    let wfold = fold(&wbuf_fold);
    for j in 0..ecc::CHECK_BITS {
        let mut taps: Vec<socfmea_netlist::NetId> = (0..ecc::DATA_BITS)
            .filter(|&i| (ecc::column(i) >> j) & 1 == 1)
            .map(|i| wbuf_data.bit(i))
            .collect();
        if cfg.address_in_ecc {
            taps.extend(&wfold[j]);
        }
        enc_checks.push(r.xor_bits(&taps));
    }
    let code_in = wbuf_data.concat(&Word::new(enc_checks.clone()));
    // coder output checker: recompute the syndrome of the generated word
    let coder_err = if cfg.coder_output_checker {
        let mut syn_bits = Vec::with_capacity(ecc::CHECK_BITS);
        for j in 0..ecc::CHECK_BITS {
            let mut taps: Vec<socfmea_netlist::NetId> = (0..ecc::CODE_BITS)
                .filter(|&i| (ecc::column(i) >> j) & 1 == 1)
                .map(|i| code_in.bit(i))
                .collect();
            if cfg.address_in_ecc {
                taps.extend(&wfold[j]);
            }
            syn_bits.push(r.xor_bits(&taps));
        }
        let nonzero = r.or_bits(&syn_bits);
        r.and2_bit(nonzero, wbuf_valid)
    } else {
        r.constant_bit(false)
    };
    let alarm_coder = r.register_bit("alarm_coder_q", coder_err, None, Some(rst));
    r.pop_block(); // coder
    r.pop_block(); // fmem

    // ---------------- memory array -------------------------------------
    r.push_block("mem");
    r.push_block("array");
    let wsel = r.decoder(&wbuf_addr);
    let mut words: Vec<Word> = Vec::with_capacity(cfg.words);
    for w in 0..cfg.words {
        let en = r.and2_bit(wr_strobe, wsel.bit(w));
        words.push(r.register(&format!("word{w}"), &code_in, Some(en), None));
    }
    let rd_code_raw = r.mux_tree(&addr_q, &words);
    r.pop_block(); // array
    r.pop_block(); // mem

    // diagnostic error injection on the read path (before the decoder, so
    // the injected error is indistinguishable from a real cell upset)
    let rd_code: Word = (0..ecc::CODE_BITS)
        .map(|i| match i {
            0 => r.xor2_bit(rd_code_raw.bit(0), err_inject0),
            38 => r.xor2_bit(rd_code_raw.bit(38), err_inject1),
            _ => rd_code_raw.bit(i),
        })
        .collect();

    // ---------------- decoder stage 1: syndrome ------------------------
    r.push_block("fmem");
    r.push_block("decoder");
    r.push_block("syn");
    let rfold = fold(&addr_fold);
    let mut syn1 = Vec::with_capacity(ecc::CHECK_BITS);
    for j in 0..ecc::CHECK_BITS {
        let mut taps: Vec<socfmea_netlist::NetId> = (0..ecc::CODE_BITS)
            .filter(|&i| (ecc::column(i) >> j) & 1 == 1)
            .map(|i| rd_code.bit(i))
            .collect();
        if cfg.address_in_ecc {
            taps.extend(&rfold[j]);
        }
        syn1.push(r.xor_bits(&taps));
    }
    let syn1 = Word::new(syn1);
    r.pop_block(); // syn

    // ---------------- decoder pipeline ---------------------------------
    r.push_block("pipe");
    let rd_v1 = r.register_bit("rd_v1", rd_grant, None, Some(rst));
    // only the redundant checker re-reads the check bits after the pipeline;
    // without it, registering them would be dead storage
    let code_p_width = if cfg.redundant_pipeline_checker {
        ecc::CODE_BITS
    } else {
        ecc::DATA_BITS
    };
    let code_p = r.register("code_p", &rd_code.slice(0, code_p_width), Some(rd_v1), None);
    let syn_p = r.register("syn_p", &syn1, Some(rd_v1), None);
    // the pipelined address copy exists solely for the checker's second
    // address-in-ECC fold
    let addr_p = (cfg.redundant_pipeline_checker && cfg.address_in_ecc)
        .then(|| r.register("addr_p", &addr_fold, Some(rd_v1), None));
    let rd_v2 = r.register_bit("rd_v2", rd_v1, None, Some(rst));
    r.pop_block(); // pipe

    // ---------------- decoder stage 2: checkers + correction -----------
    r.push_block("corr");
    // redundant checker: second syndrome computation after the pipeline
    let pipe_err = if cfg.redundant_pipeline_checker {
        let pfold = addr_p.as_ref().map(fold);
        let mut syn2 = Vec::with_capacity(ecc::CHECK_BITS);
        for j in 0..ecc::CHECK_BITS {
            let mut taps: Vec<socfmea_netlist::NetId> = (0..ecc::CODE_BITS)
                .filter(|&i| (ecc::column(i) >> j) & 1 == 1)
                .map(|i| code_p.bit(i))
                .collect();
            if let Some(pfold) = &pfold {
                taps.extend(&pfold[j]);
            }
            syn2.push(r.xor_bits(&taps));
        }
        let syn2 = Word::new(syn2);
        let diff = r.xor(&syn2, &syn_p);
        let any = r.or_reduce(&diff);
        r.and2_bit(any, rd_v2)
    } else {
        r.constant_bit(false)
    };
    let alarm_pipe = r.register_bit("alarm_pipe_q", pipe_err, None, Some(rst));

    // correction: one-hot error position from the syndrome
    let err_onehot: Vec<socfmea_netlist::NetId> = (0..ecc::CODE_BITS)
        .map(|i| r.eq_const(&syn_p, ecc::column(i) as u64))
        .collect();
    let corrected: Word = (0..ecc::DATA_BITS)
        .map(|i| r.xor2_bit(code_p.bit(i), err_onehot[i]))
        .collect();
    let single = r.or_bits(&err_onehot);
    let nonzero = r.or_reduce(&syn_p);
    let n_single = r.not_bit(single);
    let uncorr = r.and2_bit(nonzero, n_single);
    let corr_seen = r.and_bits(&[single, rd_v2]);
    let uncorr_seen = r.and_bits(&[uncorr, rd_v2]);
    let alarm_corr = r.register_bit("alarm_corr_q", corr_seen, None, Some(rst));
    let alarm_uncorr = r.register_bit("alarm_uncorr_q", uncorr_seen, None, Some(rst));

    // distributed syndrome checking: locate the error field
    let (alarm_syn_data, alarm_syn_check) = if cfg.distributed_syndrome {
        let in_data = r.or_bits(&err_onehot[..ecc::DATA_BITS]);
        let in_check = r.or_bits(&err_onehot[ecc::DATA_BITS..]);
        let d_seen = r.and_bits(&[in_data, rd_v2]);
        let c_seen = r.and_bits(&[in_check, rd_v2]);
        (
            r.register_bit("alarm_syn_data_q", d_seen, None, Some(rst)),
            r.register_bit("alarm_syn_check_q", c_seen, None, Some(rst)),
        )
    } else {
        let zero = r.constant_bit(false);
        (zero, zero)
    };
    r.pop_block(); // corr
    r.pop_block(); // decoder
    r.pop_block(); // fmem

    // ---------------- controller: output regs + BIST -------------------
    r.push_block("ctrl");
    let rdata_q = r.register("rdata_q", &corrected, Some(rd_v2), None);
    let rvalid_q = r.register_bit("rvalid_q", rd_v2, None, Some(rst));
    // self-checking BIST control: duplicated counters with a comparator
    r.push_block("bist");
    let cnt_a = r.counter("bist_cnt_a", 6, Some(bist_en), Some(rst));
    let cnt_b = r.counter("bist_cnt_b", 6, Some(bist_en), Some(rst));
    let diff = r.xor(&cnt_a, &cnt_b);
    let bist_err = r.or_reduce(&diff);
    let alarm_bist = r.register_bit("alarm_bist_q", bist_err, None, Some(rst));
    r.pop_block(); // bist
    r.pop_block(); // ctrl

    // ---------------- outputs ------------------------------------------
    r.output_word("rdata", &rdata_q);
    r.output("rvalid", rvalid_q);
    r.output("alarm_corr", alarm_corr);
    r.output("alarm_uncorr", alarm_uncorr);
    r.output("alarm_wbuf", alarm_wbuf);
    r.output("alarm_coder", alarm_coder);
    r.output("alarm_pipe", alarm_pipe);
    r.output("alarm_mpu", alarm_mpu);
    r.output("alarm_bist", alarm_bist);
    r.output("alarm_syn_data", alarm_syn_data);
    r.output("alarm_syn_check", alarm_syn_check);

    r.finish()
}

/// Handy net-name lookups for driving the generated design.
#[derive(Debug, Clone)]
pub struct MemSysPins {
    /// `rst`.
    pub rst: socfmea_netlist::NetId,
    /// `req`.
    pub req: socfmea_netlist::NetId,
    /// `wr`.
    pub wr: socfmea_netlist::NetId,
    /// `addr[…]`, LSB first.
    pub addr: Vec<socfmea_netlist::NetId>,
    /// `wdata[…]`, LSB first.
    pub wdata: Vec<socfmea_netlist::NetId>,
    /// `priv`.
    pub privilege: socfmea_netlist::NetId,
    /// `mpu_wr`.
    pub mpu_wr: socfmea_netlist::NetId,
    /// `mpu_attr[…]`.
    pub mpu_attr: Vec<socfmea_netlist::NetId>,
    /// `bist_en`.
    pub bist_en: socfmea_netlist::NetId,
    /// `err_inject0` (diagnostic single-error injection).
    pub err_inject0: socfmea_netlist::NetId,
    /// `err_inject1` (second injection bit; both = double error).
    pub err_inject1: socfmea_netlist::NetId,
    /// `rdata[…]` outputs.
    pub rdata: Vec<socfmea_netlist::NetId>,
    /// `rvalid` output.
    pub rvalid: socfmea_netlist::NetId,
}

impl MemSysPins {
    /// Resolves the pins of a generated netlist.
    ///
    /// # Panics
    ///
    /// Panics if `netlist` was not produced by [`build_netlist`].
    pub fn find(netlist: &Netlist, cfg: &MemSysConfig) -> MemSysPins {
        let n = |name: &str| {
            netlist
                .net_by_name(name)
                .unwrap_or_else(|| panic!("memsys netlist lacks net `{name}`"))
        };
        MemSysPins {
            rst: n("rst"),
            req: n("req"),
            wr: n("wr"),
            addr: (0..cfg.addr_bits())
                .map(|i| n(&format!("addr[{i}]")))
                .collect(),
            wdata: (0..32).map(|i| n(&format!("wdata[{i}]"))).collect(),
            privilege: n("priv"),
            mpu_wr: n("mpu_wr"),
            mpu_attr: (0..3).map(|i| n(&format!("mpu_attr[{i}]"))).collect(),
            bist_en: n("bist_en"),
            err_inject0: n("err_inject0"),
            err_inject1: n("err_inject1"),
            rdata: (0..32).map(|i| n(&format!("rdata[{i}]"))).collect(),
            rvalid: n("rvalid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_netlist::Logic;
    use socfmea_sim::Simulator;

    fn small(hardened: bool) -> (MemSysConfig, Netlist) {
        let cfg = if hardened {
            MemSysConfig::hardened().with_words(16)
        } else {
            MemSysConfig::baseline().with_words(16)
        };
        let nl = build_netlist(&cfg).expect("valid design");
        (cfg, nl)
    }

    struct Driver<'a> {
        sim: Simulator<'a>,
        pins: MemSysPins,
    }

    impl<'a> Driver<'a> {
        fn new(nl: &'a Netlist, cfg: &MemSysConfig) -> Driver<'a> {
            let pins = MemSysPins::find(nl, cfg);
            let mut sim = Simulator::new(nl).expect("levelizable");
            // reset pulse + idle defaults
            sim.set(pins.rst, Logic::One);
            sim.set(pins.req, Logic::Zero);
            sim.set(pins.wr, Logic::Zero);
            sim.set(pins.privilege, Logic::Zero);
            sim.set(pins.mpu_wr, Logic::Zero);
            sim.set(pins.bist_en, Logic::Zero);
            sim.set(pins.err_inject0, Logic::Zero);
            sim.set(pins.err_inject1, Logic::Zero);
            sim.set_word(&pins.addr, 0);
            sim.set_word(&pins.wdata, 0);
            sim.set_word(&pins.mpu_attr, 0);
            sim.tick();
            sim.set(pins.rst, Logic::Zero);
            sim.tick();
            Driver { sim, pins }
        }

        fn write(&mut self, addr: u64, data: u64) {
            self.sim.set(self.pins.req, Logic::One);
            self.sim.set(self.pins.wr, Logic::One);
            self.sim.set_word(&self.pins.addr, addr);
            self.sim.set_word(&self.pins.wdata, data);
            self.sim.tick();
            self.idle(2); // let the buffer flush into the array
        }

        fn idle(&mut self, n: usize) {
            self.sim.set(self.pins.req, Logic::Zero);
            self.sim.set(self.pins.wr, Logic::Zero);
            for _ in 0..n {
                self.sim.tick();
            }
        }

        fn read_with_valid(&mut self, addr: u64) -> (Option<u64>, bool) {
            self.sim.set(self.pins.req, Logic::One);
            self.sim.set(self.pins.wr, Logic::Zero);
            self.sim.set_word(&self.pins.addr, addr);
            self.sim.tick();
            self.sim.set(self.pins.req, Logic::Zero);
            let mut valid = false;
            for _ in 0..4 {
                self.sim.tick();
                if self.sim.get(self.pins.rvalid) == Logic::One {
                    valid = true;
                }
            }
            (self.sim.get_word(&self.pins.rdata), valid)
        }

        fn alarm(&self, nl: &Netlist, name: &str) -> Logic {
            self.sim.get(nl.net_by_name(name).unwrap())
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let (cfg, nl) = small(true);
        let mut d = Driver::new(&nl, &cfg);
        d.write(5, 0xdead_beef);
        let (data, valid) = d.read_with_valid(5);
        assert!(valid, "rvalid must pulse");
        assert_eq!(data, Some(0xdead_beef));
        assert_eq!(d.alarm(&nl, "alarm_uncorr"), Logic::Zero);
    }

    #[test]
    fn gate_level_matches_behavioural_codec() {
        let (cfg, nl) = small(true);
        let codec = crate::ecc::Codec::new(true);
        let mut d = Driver::new(&nl, &cfg);
        d.write(3, 0x1234_5678);
        // inspect the stored word register directly
        let word_nets: Vec<_> = (0..39)
            .map(|i| nl.net_by_name(&format!("word3[{i}]")).unwrap())
            .collect();
        let stored = d.sim.get_word(&word_nets).expect("fully defined");
        assert_eq!(stored, codec.encode(0x1234_5678, 3));
    }

    #[test]
    fn single_bit_upset_is_corrected_and_alarmed() {
        let (cfg, nl) = small(true);
        let mut d = Driver::new(&nl, &cfg);
        d.write(7, 0xcafe_f00d);
        // flip a stored bit (SEU in the array)
        let victim = nl.net_by_name("word7[13]").unwrap();
        let socfmea_netlist::Driver::Dff(ff) = nl.net(victim).driver else {
            panic!("word bit must be a flip-flop");
        };
        d.sim.flip_ff(ff);
        let (data, valid) = d.read_with_valid(7);
        assert!(valid);
        assert_eq!(data, Some(0xcafe_f00d), "corrected");
        // alarm_corr pulsed during the read
        // (it is registered; re-run and sample each cycle)
        let mut d2 = Driver::new(&nl, &cfg);
        d2.write(7, 0xcafe_f00d);
        let victim = nl.net_by_name("word7[13]").unwrap();
        let socfmea_netlist::Driver::Dff(ff) = nl.net(victim).driver else {
            panic!();
        };
        d2.sim.flip_ff(ff);
        d2.sim.set(d2.pins.req, Logic::One);
        d2.sim.set(d2.pins.wr, Logic::Zero);
        d2.sim.set_word(&d2.pins.addr, 7);
        d2.sim.tick();
        d2.sim.set(d2.pins.req, Logic::Zero);
        let mut corr_seen = false;
        for _ in 0..4 {
            d2.sim.tick();
            if d2.alarm(&nl, "alarm_corr") == Logic::One {
                corr_seen = true;
            }
        }
        assert!(corr_seen, "correction alarm must pulse");
    }

    #[test]
    fn double_bit_upset_raises_uncorrectable() {
        let (cfg, nl) = small(true);
        let mut d = Driver::new(&nl, &cfg);
        d.write(2, 0xffff_0000);
        for bit in [4, 21] {
            let victim = nl.net_by_name(&format!("word2[{bit}]")).unwrap();
            let socfmea_netlist::Driver::Dff(ff) = nl.net(victim).driver else {
                panic!();
            };
            d.sim.flip_ff(ff);
        }
        d.sim.set(d.pins.req, Logic::One);
        d.sim.set(d.pins.wr, Logic::Zero);
        d.sim.set_word(&d.pins.addr, 2);
        d.sim.tick();
        d.sim.set(d.pins.req, Logic::Zero);
        let mut uncorr_seen = false;
        for _ in 0..4 {
            d.sim.tick();
            if d.alarm(&nl, "alarm_uncorr") == Logic::One {
                uncorr_seen = true;
            }
        }
        assert!(uncorr_seen);
    }

    #[test]
    fn mpu_write_protection_blocks_and_alarms() {
        let (cfg, nl) = small(true);
        let mut d = Driver::new(&nl, &cfg);
        d.write(1, 0x11);
        // lock page 0: attr = rd_en only (0b001); page 0 covers addr 0..words/pages
        d.sim.set(d.pins.mpu_wr, Logic::One);
        d.sim.set_word(&d.pins.addr, 0);
        d.sim.set_word(&d.pins.mpu_attr, 0b001);
        d.sim.tick();
        d.sim.set(d.pins.mpu_wr, Logic::Zero);
        // a write into the locked page must be suppressed
        d.write(1, 0x999);
        let mut alarm_seen = false;
        // re-attempt to capture the alarm pulse
        d.sim.set(d.pins.req, Logic::One);
        d.sim.set(d.pins.wr, Logic::One);
        d.sim.set_word(&d.pins.addr, 1);
        d.sim.set_word(&d.pins.wdata, 0x777);
        d.sim.tick();
        if d.alarm(&nl, "alarm_mpu") == Logic::One {
            alarm_seen = true;
        }
        d.idle(2);
        if d.alarm(&nl, "alarm_mpu") == Logic::One {
            alarm_seen = true;
        }
        assert!(alarm_seen, "MPU violation alarm");
        let (data, _) = d.read_with_valid(1);
        assert_eq!(data, Some(0x11), "old value survives the blocked writes");
    }

    #[test]
    fn baseline_lacks_the_hardening_nets() {
        let (_cfg, nl) = small(false);
        // baseline's pipeline-checker alarm register is fed by a constant 0
        // (no checker logic exists)
        let pipe_q = nl.net_by_name("alarm_pipe_q").unwrap();
        let socfmea_netlist::Driver::Dff(ff) = nl.net(pipe_q).driver else {
            panic!("alarm_pipe_q must be a register");
        };
        assert!(matches!(
            nl.net(nl.dff(ff).d).driver,
            socfmea_netlist::Driver::Const(_)
        ));
        // and the hardened design computes it from real logic
        let (_c2, hard) = small(true);
        let pipe_q = hard.net_by_name("alarm_pipe_q").unwrap();
        let socfmea_netlist::Driver::Dff(ff) = hard.net(pipe_q).driver else {
            panic!();
        };
        assert!(matches!(
            hard.net(hard.dff(ff).d).driver,
            socfmea_netlist::Driver::Gate(_)
        ));
    }

    #[test]
    fn bist_counters_agree_when_fault_free() {
        let (cfg, nl) = small(true);
        let mut d = Driver::new(&nl, &cfg);
        d.sim.set(d.pins.bist_en, Logic::One);
        for _ in 0..10 {
            d.sim.tick();
            assert_eq!(d.alarm(&nl, "alarm_bist"), Logic::Zero);
        }
    }

    #[test]
    fn design_sizes_scale_with_words() {
        let nl16 = build_netlist(&MemSysConfig::hardened().with_words(16)).unwrap();
        let nl64 = build_netlist(&MemSysConfig::hardened().with_words(64)).unwrap();
        assert!(nl64.dff_count() > nl16.dff_count() * 3);
        assert!(nl64.gate_count() > nl16.gate_count() * 2);
    }
}
