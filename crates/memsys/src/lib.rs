//! The fault-robust memory sub-system of the paper's §6 (Figure 5).
//!
//! The sub-system consists of a memory controller, the memory array, and a
//! memory-protection IP with two functional units:
//!
//! * **F-MEM** — interfaces the array; hosts the SEC-DED coder/decoder
//!   ([`ecc`]), a scrubbing engine ([`scrub`]) and the error/alarm
//!   controller;
//! * **MCE** — interfaces F-MEM with the bus; provides DMA access for
//!   scrubbing and a distributed MPU ([`mpu`]) with paged attributes and
//!   permissions.
//!
//! Two models are provided:
//!
//! * a **behavioural** model ([`system::MemorySubsystem`]) for fast
//!   functional exploration and as the oracle for the gate-level tests;
//! * a **gate-level** model ([`rtl::build_netlist`]) — the design the
//!   SoC-level FMEA flow (zone extraction, worksheet, fault injection)
//!   actually analyses, in *baseline* and *hardened* configurations
//!   ([`config::MemSysConfig`]) reproducing the two implementations of §6
//!   (SFF ≈ 95 % vs SFF = 99.38 %).
//!
//! [`workload`] generates the deterministic bus traffic used as the
//! injection testbench and [`fmea`] encodes the per-zone diagnostic claims
//! of each configuration.
//!
//! # Example
//!
//! ```
//! use socfmea_memsys::config::MemSysConfig;
//! use socfmea_memsys::mpu::Master;
//! use socfmea_memsys::system::MemorySubsystem;
//!
//! let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
//! sys.bus_write(0, 42, Master::Cpu, false)?;
//! sys.memory_mut().inject_soft_error(0, 3); // cosmic ray
//! assert_eq!(sys.bus_read(0, Master::Cpu, false)?, 42); // corrected
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod ecc;
pub mod fmea;
pub mod march;
pub mod memory;
pub mod mpu;
pub mod rtl;
pub mod scrub;
pub mod system;
pub mod workload;

pub use config::MemSysConfig;
pub use ecc::{Codec, DecodeStatus, Decoded};
pub use march::{march_c_minus, MarchReport};
pub use memory::{AddressingFault, CrossOver, FaultyMemory};
pub use mpu::{Master, Mpu, MpuViolation, PagePermissions};
pub use rtl::{build_netlist, MemSysPins};
pub use scrub::Scrubber;
pub use system::{Alarms, MemorySubsystem, ReadError};
pub use workload::{
    certification_workload, smoke_workload, CertificationWorkload, WorkloadBuilder,
};
