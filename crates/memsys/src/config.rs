//! Configuration of the memory sub-system: the design knobs whose effect
//! the paper's FMEA measures.
//!
//! The *baseline* configuration reproduces the first implementation of §6
//! (plain SEC-DED with a write buffer and a decoder pipeline stage —
//! SFF ≈ 95 %, not SIL3); the *hardened* configuration enables the five
//! measures the paper added to reach SFF = 99.38 %.

/// Design knobs of the memory sub-system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSysConfig {
    /// Number of memory words (power of two).
    pub words: usize,
    /// Number of MPU pages (power of two, divides `words`).
    pub pages: usize,
    /// Fold the word address into the ECC check bits ("adding the addresses
    /// to the coding (required as well by IEC61508)").
    pub address_in_ecc: bool,
    /// Parity protection on the write-buffer registers ("adding parity bits
    /// to the write buffer").
    pub write_buffer_parity: bool,
    /// Error checker immediately after the code generator, "in order to
    /// cover also the errors in such coder".
    pub coder_output_checker: bool,
    /// Double-redundant error checker after the intermediate decoder
    /// pipeline stage.
    pub redundant_pipeline_checker: bool,
    /// Distributed syndrome checking "to allow a finer error detection".
    pub distributed_syndrome: bool,
    /// SW start-up tests "for the memory controller parts not covered by
    /// the memory protection IP" (affects FMEA claims and the workload's
    /// start-up phase; no gates).
    pub sw_startup_test: bool,
}

impl MemSysConfig {
    /// The first implementation of §6: ECC on data only, unprotected write
    /// buffer, single decoder path.
    pub fn baseline() -> MemSysConfig {
        MemSysConfig {
            words: 32,
            pages: 4,
            address_in_ecc: false,
            write_buffer_parity: false,
            coder_output_checker: false,
            redundant_pipeline_checker: false,
            distributed_syndrome: false,
            sw_startup_test: false,
        }
    }

    /// The second implementation of §6 with all five hardening measures.
    pub fn hardened() -> MemSysConfig {
        MemSysConfig {
            address_in_ecc: true,
            write_buffer_parity: true,
            coder_output_checker: true,
            redundant_pipeline_checker: true,
            distributed_syndrome: true,
            sw_startup_test: true,
            ..MemSysConfig::baseline()
        }
    }

    /// Scales the array (and pages proportionally) — the paper's example
    /// extracted about 170 sensible zones; `with_words(128)` lands in that
    /// region.
    pub fn with_words(mut self, words: usize) -> MemSysConfig {
        assert!(words.is_power_of_two(), "word count must be a power of two");
        self.words = words;
        self.pages = (words / 16).clamp(2, 16);
        self
    }

    /// Address width in bits.
    pub fn addr_bits(&self) -> usize {
        self.words.trailing_zeros() as usize
    }

    /// Page-index width in bits.
    pub fn page_bits(&self) -> usize {
        self.pages.trailing_zeros() as usize
    }

    /// Words per page.
    pub fn words_per_page(&self) -> usize {
        self.words / self.pages
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two dimensions or pages not dividing words.
    pub fn validate(&self) {
        assert!(self.words.is_power_of_two(), "words must be a power of two");
        assert!(self.pages.is_power_of_two(), "pages must be a power of two");
        assert!(
            self.pages <= self.words,
            "more pages than words makes no sense"
        );
    }
}

impl Default for MemSysConfig {
    fn default() -> MemSysConfig {
        MemSysConfig::hardened()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_hardened_differ_in_all_five_measures() {
        let b = MemSysConfig::baseline();
        let h = MemSysConfig::hardened();
        assert!(!b.address_in_ecc && h.address_in_ecc);
        assert!(!b.write_buffer_parity && h.write_buffer_parity);
        assert!(!b.coder_output_checker && h.coder_output_checker);
        assert!(!b.redundant_pipeline_checker && h.redundant_pipeline_checker);
        assert!(!b.distributed_syndrome && h.distributed_syndrome);
        assert!(!b.sw_startup_test && h.sw_startup_test);
        assert_eq!(b.words, h.words);
    }

    #[test]
    fn derived_widths() {
        let c = MemSysConfig::baseline();
        assert_eq!(c.addr_bits(), 5);
        assert_eq!(c.page_bits(), 2);
        assert_eq!(c.words_per_page(), 8);
        c.validate();
    }

    #[test]
    fn scaling_adjusts_pages() {
        let c = MemSysConfig::hardened().with_words(128);
        assert_eq!(c.words, 128);
        assert_eq!(c.pages, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = MemSysConfig::baseline().with_words(12);
    }
}
