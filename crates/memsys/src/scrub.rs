//! The scrubbing engine of the F-MEM block.
//!
//! "The scrubbing function stores the locations where an error occurred, in
//! order to repair them when the memory isn't used by the system or it can
//! also perform a background scanning of the memory for fault-forecasting"
//! (§6).

use crate::ecc::{Codec, DecodeStatus};
use crate::memory::FaultyMemory;
use std::collections::VecDeque;

/// One logged correctable-error event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubEntry {
    /// The affected word address.
    pub addr: u32,
    /// The corrected code-word bit position.
    pub bit: u8,
}

/// The scrubbing engine: an error log plus a background scan pointer.
///
/// # Example
///
/// ```
/// use socfmea_memsys::ecc::Codec;
/// use socfmea_memsys::memory::FaultyMemory;
/// use socfmea_memsys::scrub::Scrubber;
///
/// let codec = Codec::new(false);
/// let mut mem = FaultyMemory::new(8);
/// mem.write(2, codec.encode(7, 2));
/// mem.inject_soft_error(2, 4); // latent upset
///
/// let mut scrub = Scrubber::new(8);
/// // background scan finds and repairs it:
/// let repaired = scrub.background_scan(&mut mem, &codec, 8);
/// assert_eq!(repaired, 1);
/// assert_eq!(codec.decode(mem.read(2), 2).syndrome, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Scrubber {
    pending: VecDeque<ScrubEntry>,
    scan_ptr: u32,
    words: u32,
    repaired: u64,
    scanned: u64,
}

impl Scrubber {
    /// Creates a scrubber for a memory of `words` rows.
    pub fn new(words: u32) -> Scrubber {
        Scrubber {
            pending: VecDeque::new(),
            scan_ptr: 0,
            words,
            repaired: 0,
            scanned: 0,
        }
    }

    /// Logs a corrected error observed by the decoder during normal
    /// operation ("stores the locations where an error occurred").
    pub fn log_correction(&mut self, addr: u32, bit: u8) {
        if !self.pending.iter().any(|e| e.addr == addr) {
            self.pending.push_back(ScrubEntry { addr, bit });
        }
    }

    /// Number of locations waiting to be repaired.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime counters `(scanned, repaired)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.scanned, self.repaired)
    }

    /// Repairs the oldest logged location (run "when the memory isn't used
    /// by the system"). Returns the repaired address, if any work was
    /// pending.
    pub fn scrub_next(&mut self, mem: &mut FaultyMemory, codec: &Codec) -> Option<u32> {
        let entry = self.pending.pop_front()?;
        let decoded = codec.decode(mem.read(entry.addr), entry.addr);
        if let DecodeStatus::Corrected(_) = decoded.status {
            mem.write(entry.addr, codec.encode(decoded.data, entry.addr));
            self.repaired += 1;
        }
        Some(entry.addr)
    }

    /// Scans the next `budget` rows for latent correctable errors
    /// (fault-forecasting) and repairs them in place. Returns the number of
    /// repairs.
    pub fn background_scan(&mut self, mem: &mut FaultyMemory, codec: &Codec, budget: u32) -> u32 {
        let mut repaired = 0;
        for _ in 0..budget {
            let addr = self.scan_ptr;
            self.scan_ptr = (self.scan_ptr + 1) % self.words;
            self.scanned += 1;
            let decoded = codec.decode(mem.read(addr), addr);
            if let DecodeStatus::Corrected(_) = decoded.status {
                mem.write(addr, codec.encode(decoded.data, addr));
                self.repaired += 1;
                repaired += 1;
            }
        }
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(words: u32, codec: &Codec) -> FaultyMemory {
        let mut mem = FaultyMemory::new(words as usize);
        for a in 0..words {
            mem.write(a, codec.encode(a * 3, a));
        }
        mem
    }

    #[test]
    fn logged_corrections_are_repaired_once() {
        let codec = Codec::new(true);
        let mut mem = fresh(8, &codec);
        mem.inject_soft_error(5, 2);
        let mut s = Scrubber::new(8);
        s.log_correction(5, 2);
        s.log_correction(5, 2); // duplicate is ignored
        assert_eq!(s.pending(), 1);
        assert_eq!(s.scrub_next(&mut mem, &codec), Some(5));
        assert_eq!(codec.decode(mem.read(5), 5).status, DecodeStatus::Clean);
        assert_eq!(s.scrub_next(&mut mem, &codec), None);
        assert_eq!(s.counters().1, 1);
    }

    #[test]
    fn background_scan_wraps_and_repairs_everything() {
        let codec = Codec::new(false);
        let mut mem = fresh(8, &codec);
        mem.inject_soft_error(1, 0);
        mem.inject_soft_error(6, 38);
        let mut s = Scrubber::new(8);
        // two passes of 4 each: covers all 8 rows
        let r1 = s.background_scan(&mut mem, &codec, 4);
        let r2 = s.background_scan(&mut mem, &codec, 4);
        assert_eq!(r1 + r2, 2);
        for a in 0..8 {
            assert_eq!(codec.decode(mem.read(a), a).status, DecodeStatus::Clean);
        }
        assert_eq!(s.counters(), (8, 2));
    }

    #[test]
    fn uncorrectable_rows_are_left_alone() {
        let codec = Codec::new(false);
        let mut mem = fresh(4, &codec);
        mem.inject_soft_error(2, 0);
        mem.inject_soft_error(2, 1); // double error
        let mut s = Scrubber::new(4);
        let repaired = s.background_scan(&mut mem, &codec, 4);
        assert_eq!(repaired, 0);
        assert_eq!(
            codec.decode(mem.read(2), 2).status,
            DecodeStatus::DetectedUncorrectable
        );
    }
}
