//! Workload (testbench) generation for the gate-level memory sub-system.
//!
//! The injection flow reuses "verification components available on the
//! market ... as a workload to inject faults, obtaining at same time design
//! validation and reliability evaluation" (§5). Here the verification
//! component is a deterministic bus-traffic generator with the phases a
//! certification testbench needs:
//!
//! 1. reset and MPU programming (two passes, so every attribute bit
//!    toggles),
//! 2. the SW start-up test (walking patterns over every page — the window
//!    is reported so the injection manager can credit SW detection),
//! 3. diagnostic self-test using the error-injection port (exercises the
//!    correction, detection and alarm paths without hardware faults),
//! 4. full write/read sweeps with three data polarities,
//! 5. MPU violation attempts,
//! 6. a BIST phase long enough to roll the counters over,
//! 7. idle tail.
//!
//! Every emitted cycle assigns *all* control inputs, so workloads replay
//! identically on golden and faulty designs.

use crate::config::MemSysConfig;
use crate::rtl::MemSysPins;
use socfmea_netlist::{Logic, NetId};
use socfmea_sim::Workload;

/// Builds bus-level stimulus for the generated design.
#[derive(Debug)]
pub struct WorkloadBuilder<'a> {
    pins: &'a MemSysPins,
    cfg: &'a MemSysConfig,
    workload: Workload,
    sw_test_window: Option<(usize, usize)>,
}

#[derive(Debug, Clone, Copy, Default)]
struct CycleSpec {
    rst: bool,
    req: bool,
    wr: bool,
    addr: u64,
    wdata: u64,
    privilege: bool,
    mpu_wr: bool,
    mpu_attr: u64,
    bist_en: bool,
    inject0: bool,
    inject1: bool,
}

impl<'a> WorkloadBuilder<'a> {
    /// Starts an empty workload for the given design pins.
    pub fn new(pins: &'a MemSysPins, cfg: &'a MemSysConfig, name: &str) -> WorkloadBuilder<'a> {
        WorkloadBuilder {
            pins,
            cfg,
            workload: Workload::new(name),
            sw_test_window: None,
        }
    }

    fn push(&mut self, spec: CycleSpec) {
        let mut c: Vec<(NetId, Logic)> = vec![
            (self.pins.rst, Logic::from_bool(spec.rst)),
            (self.pins.req, Logic::from_bool(spec.req)),
            (self.pins.wr, Logic::from_bool(spec.wr)),
            (self.pins.privilege, Logic::from_bool(spec.privilege)),
            (self.pins.mpu_wr, Logic::from_bool(spec.mpu_wr)),
            (self.pins.bist_en, Logic::from_bool(spec.bist_en)),
            (self.pins.err_inject0, Logic::from_bool(spec.inject0)),
            (self.pins.err_inject1, Logic::from_bool(spec.inject1)),
        ];
        socfmea_sim::assign_bus(&mut c, &self.pins.addr, spec.addr);
        socfmea_sim::assign_bus(&mut c, &self.pins.wdata, spec.wdata);
        socfmea_sim::assign_bus(&mut c, &self.pins.mpu_attr, spec.mpu_attr);
        self.workload.push_cycle(c);
    }

    /// A reset pulse followed by one settling cycle.
    pub fn reset(&mut self) -> &mut Self {
        self.push(CycleSpec {
            rst: true,
            ..CycleSpec::default()
        });
        self.push(CycleSpec::default());
        self
    }

    /// `n` idle cycles.
    pub fn idle(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(CycleSpec::default());
        }
        self
    }

    /// One write transaction (plus two drain cycles so the buffer flushes).
    pub fn write(&mut self, addr: u64, data: u64) -> &mut Self {
        self.push(CycleSpec {
            req: true,
            wr: true,
            addr,
            wdata: data,
            privilege: true,
            ..CycleSpec::default()
        });
        self.idle(2)
    }

    /// One read transaction plus the three-cycle latency drain.
    pub fn read(&mut self, addr: u64) -> &mut Self {
        self.push(CycleSpec {
            req: true,
            wr: false,
            addr,
            privilege: true,
            ..CycleSpec::default()
        });
        self.idle(3)
    }

    /// A read with the diagnostic error-injection port asserted
    /// (`single`: bit 0; otherwise bits 0+38, an uncorrectable double).
    pub fn read_with_injection(&mut self, addr: u64, single: bool) -> &mut Self {
        // The injection must stay asserted while the read traverses the
        // decoder (3 cycles).
        for i in 0..4 {
            self.push(CycleSpec {
                req: i == 0,
                wr: false,
                addr,
                privilege: true,
                inject0: true,
                inject1: !single,
                ..CycleSpec::default()
            });
        }
        self
    }

    /// Programs the attributes of the page containing `addr`
    /// (`attr = {rd_en, wr_en, priv_only}` bits).
    pub fn program_mpu(&mut self, addr: u64, attr: u64) -> &mut Self {
        self.push(CycleSpec {
            mpu_wr: true,
            addr,
            mpu_attr: attr,
            ..CycleSpec::default()
        });
        self.idle(1)
    }

    /// An unprivileged write attempt (provokes an MPU alarm on protected
    /// pages).
    pub fn unprivileged_write(&mut self, addr: u64, data: u64) -> &mut Self {
        self.push(CycleSpec {
            req: true,
            wr: true,
            addr,
            wdata: data,
            privilege: false,
            ..CycleSpec::default()
        });
        self.idle(2)
    }

    /// Runs the self-checking BIST counters for `n` cycles.
    pub fn run_bist(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(CycleSpec {
                bist_en: true,
                ..CycleSpec::default()
            });
        }
        self
    }

    /// The SW start-up test phase: writes walking patterns into the first
    /// words of every page and reads them back. The covered cycle window is
    /// recorded: a golden/faulty mismatch inside it is what the SW
    /// comparison would catch, so the injection manager counts it as a
    /// *detected* dangerous failure — that is how the paper's "SW start-up
    /// tests ... for the memory controller parts" enter the DDF.
    pub fn sw_startup_test(&mut self) -> &mut Self {
        let start = self.workload.len();
        let wpp = self.cfg.words_per_page() as u64;
        for p in 0..self.cfg.pages as u64 {
            let addr = p * wpp;
            let pattern = 1u64 << (p % 32);
            self.write(addr, pattern);
            self.read(addr);
            self.write(addr, !pattern & 0xffff_ffff);
            self.read(addr);
        }
        let end = self.workload.len();
        self.sw_test_window = Some(match self.sw_test_window {
            Some((s, _)) => (s, end),
            None => (start, end),
        });
        self
    }

    /// Exercises the MPU in both directions on every page: locks the page,
    /// provokes a denial (alarm), opens it fully, verifies access. This
    /// drives every attribute bit through both values *with observable
    /// consequences*, so attribute-register faults are testable.
    pub fn mpu_exercise(&mut self) -> &mut Self {
        for p in 0..self.cfg.pages as u64 {
            let addr = p * self.cfg.words_per_page() as u64;
            self.program_mpu(addr, 0b000); // fully locked
            self.read(addr); // denied even when privileged: alarm_mpu
            self.write(addr, 0xdead); // denied write: alarm_mpu
            self.program_mpu(addr, 0b111); // open, privileged-only
            self.unprivileged_write(addr, 0x5a); // denied: alarm_mpu
            self.read(addr); // privileged read passes
        }
        self
    }

    /// Unprivileged reads of the given addresses (granted on open pages —
    /// a priv-only attribute fault turns them into visible denials).
    pub fn unprivileged_read(&mut self, addr: u64) -> &mut Self {
        self.push(CycleSpec {
            req: true,
            wr: false,
            addr,
            privilege: false,
            ..CycleSpec::default()
        });
        self.idle(3)
    }

    /// The diagnostic self-test: exercises single-error correction and
    /// double-error detection through the error-injection port on a few
    /// words spread over the array.
    pub fn error_injection_test(&mut self) -> &mut Self {
        let words = self.cfg.words as u64;
        for addr in [0, words / 2, words - 1] {
            self.write(addr, 0x5555_aaaa ^ addr);
            self.read_with_injection(addr, true); // corrected single
            self.read_with_injection(addr, false); // detected double
            self.read(addr); // clean again
        }
        self
    }

    /// Finalises the workload, returning it together with the SW-test
    /// window (if a start-up test phase was composed).
    pub fn finish(self) -> CertificationWorkload {
        CertificationWorkload {
            workload: self.workload,
            sw_test_window: self.sw_test_window,
        }
    }

    /// Number of cycles composed so far.
    pub fn len(&self) -> usize {
        self.workload.len()
    }

    /// True when no cycles were composed yet.
    pub fn is_empty(&self) -> bool {
        self.workload.is_empty()
    }
}

/// A workload plus its diagnostic metadata.
#[derive(Debug, Clone)]
pub struct CertificationWorkload {
    /// The replayable stimulus.
    pub workload: Workload,
    /// Cycle range `[start, end)` of the SW start-up test phase, if any.
    pub sw_test_window: Option<(usize, usize)>,
}

/// The certification workload used by the experiments (see the module
/// docs for the phase list).
pub fn certification_workload(pins: &MemSysPins, cfg: &MemSysConfig) -> CertificationWorkload {
    let mut b = WorkloadBuilder::new(pins, cfg, "certification");
    b.reset();
    // MPU: exercise every page's attributes in both directions (each bit
    // observable through grant/deny), then program the final state: all
    // pages open except the last (privileged-only).
    b.mpu_exercise();
    for p in 0..cfg.pages as u64 {
        let addr = p * cfg.words_per_page() as u64;
        let attr = if p as usize == cfg.pages - 1 {
            0b111
        } else {
            0b011
        };
        b.program_mpu(addr, attr);
    }
    if cfg.sw_startup_test {
        b.sw_startup_test();
    }
    b.error_injection_test();
    // full sweep, three data polarities, address-dependent patterns
    for w in 0..cfg.words as u64 {
        b.write(w, 0x0101_0101u64.wrapping_mul(w + 1) & 0xffff_ffff);
    }
    for w in 0..cfg.words as u64 {
        b.read(w);
    }
    for w in 0..cfg.words as u64 {
        b.write(w, !(0x0101_0101u64.wrapping_mul(w + 1)) & 0xffff_ffff);
    }
    for w in (0..cfg.words as u64).rev() {
        b.read(w);
    }
    for w in 0..cfg.words as u64 {
        b.write(w, 0x9e37_79b9u64.wrapping_mul(w + 3) & 0xffff_ffff);
    }
    for w in 0..cfg.words as u64 {
        b.read(w);
    }
    // unprivileged reads of the open pages (visible if a priv-only
    // attribute bit is stuck), then provoke violations on the locked page
    for p in 0..cfg.pages as u64 - 1 {
        b.unprivileged_read(p * cfg.words_per_page() as u64 + 1);
    }
    let locked = (cfg.pages as u64 - 1) * cfg.words_per_page() as u64;
    b.unprivileged_write(locked, 0xbad);
    b.unprivileged_write(locked + 1, 0xbad);
    // BIST long enough to roll the 6-bit counters over, and an idle tail
    b.run_bist(70);
    b.idle(6);
    b.finish()
}

/// A short smoke workload (reset + a few transactions) for quick tests.
pub fn smoke_workload(pins: &MemSysPins, cfg: &MemSysConfig) -> Workload {
    let mut b = WorkloadBuilder::new(pins, cfg, "smoke");
    b.reset();
    b.write(1, 0xa5a5_a5a5)
        .read(1)
        .write(2, 0x5a5a_5a5a)
        .read(2)
        .idle(4);
    b.finish().workload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::build_netlist;
    use socfmea_sim::Simulator;

    #[test]
    fn smoke_workload_replays_cleanly() {
        let cfg = MemSysConfig::hardened().with_words(16);
        let nl = build_netlist(&cfg).unwrap();
        let pins = MemSysPins::find(&nl, &cfg);
        let w = smoke_workload(&pins, &cfg);
        assert!(!w.is_empty());
        let mut sim = Simulator::new(&nl).unwrap();
        let rdata = pins.rdata.clone();
        let rvalid = pins.rvalid;
        let mut reads = Vec::new();
        w.run(&mut sim, |_, s| {
            if s.get(rvalid) == Logic::One {
                reads.push(s.get_word(&rdata));
            }
        });
        assert_eq!(reads, vec![Some(0xa5a5_a5a5), Some(0x5a5a_5a5a)]);
    }

    #[test]
    fn certification_workload_exercises_alarms_without_faults() {
        let cfg = MemSysConfig::hardened().with_words(16);
        let nl = build_netlist(&cfg).unwrap();
        let pins = MemSysPins::find(&nl, &cfg);
        let cert = certification_workload(&pins, &cfg);
        assert!(cert.sw_test_window.is_some());
        let mut sim = Simulator::new(&nl).unwrap();
        let uncorr = nl.net_by_name("alarm_uncorr").unwrap();
        let corr = nl.net_by_name("alarm_corr").unwrap();
        let mpu = nl.net_by_name("alarm_mpu").unwrap();
        let (mut u, mut c, mut m) = (false, false, false);
        cert.workload.run(&mut sim, |_, s| {
            u |= s.get(uncorr) == Logic::One;
            c |= s.get(corr) == Logic::One;
            m |= s.get(mpu) == Logic::One;
        });
        // the error-injection phase must fire both decoder alarms, the
        // violation phase the MPU alarm
        assert!(c, "correction alarm must fire during the self-test");
        assert!(u, "uncorrectable alarm must fire during the self-test");
        assert!(m, "MPU alarm must fire during the violation phase");
    }

    #[test]
    fn injected_single_error_is_corrected() {
        let cfg = MemSysConfig::hardened().with_words(16);
        let nl = build_netlist(&cfg).unwrap();
        let pins = MemSysPins::find(&nl, &cfg);
        let mut b = WorkloadBuilder::new(&pins, &cfg, "inj");
        b.reset();
        b.write(3, 0x1234_5678);
        b.read_with_injection(3, true);
        let w = b.finish().workload;
        let mut sim = Simulator::new(&nl).unwrap();
        let mut data = None;
        let rdata = pins.rdata.clone();
        let rvalid = pins.rvalid;
        w.run(&mut sim, |_, s| {
            if s.get(rvalid) == Logic::One {
                data = s.get_word(&rdata);
            }
        });
        assert_eq!(data, Some(0x1234_5678), "single injected error corrected");
    }

    #[test]
    fn builder_len_tracks_cycles() {
        let cfg = MemSysConfig::baseline().with_words(16);
        let nl = build_netlist(&cfg).unwrap();
        let pins = MemSysPins::find(&nl, &cfg);
        let mut b = WorkloadBuilder::new(&pins, &cfg, "t");
        assert!(b.is_empty());
        b.reset();
        assert_eq!(b.len(), 2);
        b.write(0, 0);
        assert_eq!(b.len(), 5);
        b.read(0);
        assert_eq!(b.len(), 9);
    }
}
