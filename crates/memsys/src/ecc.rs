//! SEC-DED error-correcting code (modified Hamming / Hsiao construction).
//!
//! The memory sub-system of the paper protects its array with "a SEC-DED
//! algorithm ... with a standard modified Hamming architecture" (§6). This
//! module implements the (39,32) Hsiao code:
//!
//! * 32 data bits, 7 check bits;
//! * every data column of the parity-check matrix H has odd weight 3, every
//!   check column weight 1 — so a single-bit error yields a syndrome equal
//!   to its (odd-weight) column and is **corrected**, while any double-bit
//!   error yields a nonzero even-weight syndrome that matches no column and
//!   is **detected**;
//! * optionally, an address *signature* (even-weight columns) is folded into
//!   the check bits at encode and decode: reading the right word cancels
//!   the signature, reading a wrong word (addressing fault — "no, wrong or
//!   multiple addressing") leaves a nonzero syndrome. This is the "adding
//!   the addresses to the coding (required as well by IEC61508)" hardening
//!   step of §6.
//!
//! The same H-matrix constants drive the gate-level encoder/decoder
//! generator in [`crate::rtl`], so behavioural and gate-level models are
//! bit-exact.

/// Number of data bits.
pub const DATA_BITS: usize = 32;
/// Number of check bits.
pub const CHECK_BITS: usize = 7;
/// Total code word width.
pub const CODE_BITS: usize = DATA_BITS + CHECK_BITS;

/// The 7-bit H-matrix column of each code-word position (data bits first,
/// then check bits).
///
/// Data columns are the 32 lexicographically-smallest weight-3 values;
/// check columns are the identity.
pub const fn column(position: usize) -> u8 {
    assert!(position < CODE_BITS);
    if position >= DATA_BITS {
        1 << (position - DATA_BITS)
    } else {
        DATA_COLUMNS[position]
    }
}

/// Weight-3 columns for the 32 data bits.
const DATA_COLUMNS: [u8; 32] = generate_data_columns();

const fn generate_data_columns() -> [u8; 32] {
    let mut cols = [0u8; 32];
    let mut v: u16 = 0;
    let mut n = 0;
    while n < 32 {
        v += 1;
        if v < 128 && (v as u8).count_ones() == 3 {
            cols[n] = v as u8;
            n += 1;
        }
    }
    cols
}

/// Address-signature columns (up to 21 address bits).
///
/// The columns have **even** weight (4), so any XOR of them — i.e. the
/// signature difference between two addresses — also has even weight and
/// can never equal an (odd-weight) H column: an addressing fault is never
/// *mis-corrected*, only detected (or, beyond 6 address bits, possibly
/// aliased to zero). The first six columns are linearly independent, so for
/// arrays up to 64 words every addressing fault is detected.
const ADDR_COLUMNS: [u8; 21] = [
    // a GF(2)-independent basis of six weight-4 columns first...
    0b000_1111, // 15
    0b001_0111, // 23
    0b001_1011, // 27
    0b001_1101, // 29
    0b010_0111, // 39
    0b100_0111, // 71
    // ...then further weight-4 columns for wider addresses (necessarily
    // dependent beyond six bits — the syndrome is only 7 bits wide)
    30, 43, 45, 46, 51, 53, 54, 57, 58, 60, 75, 77, 78, 83, 85,
];

/// The signature column of one address bit (used by the gate-level fold
/// network so the hardware matches [`address_signature`] exactly).
///
/// # Panics
///
/// Panics if `bit >= 21`.
pub const fn addr_column(bit: usize) -> u8 {
    ADDR_COLUMNS[bit]
}

/// The 7-bit address signature folded into the check bits.
///
/// # Panics
///
/// Panics if the address needs more than 21 bits.
pub fn address_signature(addr: u32) -> u8 {
    assert!(addr < (1 << 21), "address exceeds 21 bits");
    let mut sig = 0u8;
    let mut a = addr;
    let mut k = 0;
    while a != 0 {
        if a & 1 == 1 {
            sig ^= ADDR_COLUMNS[k];
        }
        a >>= 1;
        k += 1;
    }
    sig
}

/// Outcome of decoding one code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeStatus {
    /// Syndrome zero: the word is clean.
    Clean,
    /// A single-bit error was corrected at the given code-word position.
    Corrected(u8),
    /// A multi-bit (or addressing) error was detected but cannot be
    /// corrected.
    DetectedUncorrectable,
}

impl DecodeStatus {
    /// True when the returned data is trustworthy.
    pub fn data_valid(self) -> bool {
        !matches!(self, DecodeStatus::DetectedUncorrectable)
    }
}

/// The decoded word plus its status and raw syndrome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The (possibly corrected) data bits.
    pub data: u32,
    /// What the decoder concluded.
    pub status: DecodeStatus,
    /// The raw 7-bit syndrome.
    pub syndrome: u8,
}

/// The SEC-DED codec, optionally folding the word address into the code.
///
/// # Example
///
/// ```
/// use socfmea_memsys::ecc::{Codec, DecodeStatus};
///
/// let codec = Codec::new(true); // with address folding
/// let code = codec.encode(0xdead_beef, 5);
/// // single-bit upset in the memory cell:
/// let upset = code ^ (1 << 17);
/// let out = codec.decode(upset, 5);
/// assert_eq!(out.data, 0xdead_beef);
/// assert_eq!(out.status, DecodeStatus::Corrected(17));
/// // reading the wrong address is detected:
/// let wrong = codec.decode(code, 6);
/// assert_eq!(wrong.status, DecodeStatus::DetectedUncorrectable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codec {
    address_in_code: bool,
}

impl Codec {
    /// Creates a codec; `address_in_code` enables address folding.
    pub fn new(address_in_code: bool) -> Codec {
        Codec { address_in_code }
    }

    /// Whether address folding is enabled.
    pub fn address_in_code(&self) -> bool {
        self.address_in_code
    }

    /// Check bits for a data word (before address folding).
    pub fn check_bits(&self, data: u32) -> u8 {
        let mut checks = 0u8;
        for (i, &col) in DATA_COLUMNS.iter().enumerate() {
            if (data >> i) & 1 == 1 {
                checks ^= col;
            }
        }
        checks
    }

    /// Encodes a data word (folding `addr` when enabled); returns the
    /// 39-bit code word (data in bits 0..32, checks in bits 32..39).
    pub fn encode(&self, data: u32, addr: u32) -> u64 {
        let mut checks = self.check_bits(data);
        if self.address_in_code {
            checks ^= address_signature(addr);
        }
        (data as u64) | ((checks as u64) << DATA_BITS)
    }

    /// The syndrome of a stored code word read at `addr`.
    pub fn syndrome(&self, code: u64, addr: u32) -> u8 {
        let data = (code & 0xffff_ffff) as u32;
        let stored_checks = ((code >> DATA_BITS) & 0x7f) as u8;
        let mut s = self.check_bits(data) ^ stored_checks;
        if self.address_in_code {
            s ^= address_signature(addr);
        }
        s
    }

    /// Decodes a code word read at `addr`: corrects single-bit errors,
    /// detects everything else the code can see.
    pub fn decode(&self, code: u64, addr: u32) -> Decoded {
        let syndrome = self.syndrome(code, addr);
        let data = (code & 0xffff_ffff) as u32;
        if syndrome == 0 {
            return Decoded {
                data,
                status: DecodeStatus::Clean,
                syndrome,
            };
        }
        for pos in 0..CODE_BITS {
            if column(pos) == syndrome {
                let corrected_code = code ^ (1u64 << pos);
                return Decoded {
                    data: (corrected_code & 0xffff_ffff) as u32,
                    status: DecodeStatus::Corrected(pos as u8),
                    syndrome,
                };
            }
        }
        Decoded {
            data,
            status: DecodeStatus::DetectedUncorrectable,
            syndrome,
        }
    }
}

impl Default for Codec {
    fn default() -> Codec {
        Codec::new(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_distinct_and_odd() {
        let mut seen = std::collections::HashSet::new();
        for pos in 0..CODE_BITS {
            let c = column(pos);
            assert!(c != 0);
            assert_eq!(c.count_ones() % 2, 1, "column {pos} must have odd weight");
            assert!(seen.insert(c), "duplicate column at {pos}");
        }
    }

    #[test]
    fn clean_round_trip() {
        let codec = Codec::new(false);
        for data in [0u32, 1, 0xffff_ffff, 0xdead_beef, 0x8000_0001] {
            let code = codec.encode(data, 0);
            let d = codec.decode(code, 0);
            assert_eq!(d.status, DecodeStatus::Clean);
            assert_eq!(d.data, data);
            assert_eq!(d.syndrome, 0);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let codec = Codec::new(true);
        let data = 0xa5a5_5a5a;
        let addr = 9;
        let code = codec.encode(data, addr);
        for bit in 0..CODE_BITS {
            let d = codec.decode(code ^ (1u64 << bit), addr);
            assert_eq!(d.status, DecodeStatus::Corrected(bit as u8));
            assert_eq!(d.data, data, "data restored after flip of bit {bit}");
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let codec = Codec::new(false);
        let code = codec.encode(0x1234_5678, 0);
        for i in 0..CODE_BITS {
            for j in i + 1..CODE_BITS {
                let d = codec.decode(code ^ (1u64 << i) ^ (1u64 << j), 0);
                assert_eq!(
                    d.status,
                    DecodeStatus::DetectedUncorrectable,
                    "double error ({i},{j}) must be detected, not miscorrected"
                );
            }
        }
    }

    #[test]
    fn address_folding_detects_wrong_addressing() {
        let codec = Codec::new(true);
        let code = codec.encode(42, 3);
        for wrong in [0u32, 1, 2, 4, 7, 15] {
            let d = codec.decode(code, wrong);
            assert_ne!(
                d.syndrome, 0,
                "wrong address {wrong} must disturb the syndrome"
            );
        }
        // and without folding the addressing fault is invisible
        let plain = Codec::new(false);
        let code = plain.encode(42, 3);
        assert_eq!(plain.decode(code, 12).status, DecodeStatus::Clean);
    }

    #[test]
    fn address_signature_is_linear_and_nonzero() {
        assert_eq!(address_signature(0), 0);
        for a in 1u32..64 {
            assert_ne!(address_signature(a), 0, "addr {a}");
            for b in 0u32..8 {
                assert_eq!(
                    address_signature(a) ^ address_signature(b),
                    address_signature_xor(a, b)
                );
            }
        }
    }

    fn address_signature_xor(a: u32, b: u32) -> u8 {
        // linearity: sig(a) ^ sig(b) == sig over the symmetric difference of
        // set bits, which equals sig(a ^ b)
        address_signature(a ^ b)
    }
}
