//! FMEA setup for the memory sub-system: zone classification and the
//! diagnostic-coverage claims each configuration can honestly make.
//!
//! This module encodes the engineering judgement of §6 of the paper: which
//! zones each design measure covers, with claims capped by the Annex A
//! catalog. The claims are *structural* — they follow from which checker
//! exists in the configuration — not tuned per zone, so the baseline/
//! hardened SFF gap emerges from the architecture (and is cross-checked by
//! the fault-injection validation, experiment T5).

use crate::config::MemSysConfig;
use socfmea_core::{DiagnosticClaim, ExtractConfig, FreqClass, Worksheet, ZoneSet};
use socfmea_iec61508::{ComponentClass, TechniqueId};

/// The zone-extraction configuration for the generated design: block-path
/// class rules matching Figure 5.
pub fn extract_config() -> ExtractConfig {
    ExtractConfig::default()
        .classify("mem/array", ComponentClass::VariableMemory)
        .classify("mce", ComponentClass::Bus)
        .classify("fmem", ComponentClass::ProcessingUnit)
        .classify("ctrl", ComponentClass::ProcessingUnit)
}

fn claim(technique: TechniqueId, t: f64, p: f64, modes: Option<&[&str]>) -> DiagnosticClaim {
    DiagnosticClaim {
        technique,
        ddf_transient: t,
        ddf_permanent: p,
        mode_filter: modes.map(|m| m.iter().map(|s| (*s).to_owned()).collect()),
    }
}

/// Fills a worksheet with the assumptions and diagnostic claims of the
/// given configuration.
///
/// Zone-independent assumptions: architectural S = 0.4 (the fraction of
/// faults masked by construction), frequency class from the zone's role,
/// full lifetime exposure for the memory array (data lives long between
/// accesses — the ζ factor of §3), shorter exposure for pipeline registers.
pub fn apply_assumptions(ws: &mut Worksheet<'_>, cfg: &MemSysConfig) {
    let cfg = *cfg;
    ws.assume_all(|zone, a| {
        let name = zone.name.as_str();
        a.s_architectural = 0.4;
        a.freq = FreqClass::High;
        a.lifetime_exposure = 1.0;
        a.diagnostics.clear();

        if name.contains("alarm") {
            // registers/cones of the diagnostic logic itself: a fault here
            // produces a spurious alarm or a missed *future* detection —
            // first-order safe (it cannot corrupt the mission data path);
            // the residual danger is the latent missed-detection fraction.
            a.s_architectural = 0.9;
            a.lifetime_exposure = 0.3;
            a.is_diagnostic = true;
            return;
        }
        // safety-mechanism state: shadow address latches, write-buffer
        // parity, BIST — latent-fault candidates for the ISO 26262 LFM
        if name.contains("shadow") || name.contains("wbuf_par") || name.contains("bist") {
            a.is_diagnostic = true;
        }

        if name.starts_with("mem/array/word") {
            // the memory array: long-lived data, fully exposed
            a.freq = FreqClass::VeryHigh;
            // the address-decode logic is shared across all words (and
            // separately zoned at mce/addr), so only a small share of this
            // zone's rate belongs to the addressing mode
            a.set_mode_weight("addressing", 0.05);
            // SEC-DED covers upsets and cross-over disturbances at the
            // norm's highest credit
            a.diagnostics.push(claim(
                TechniqueId::RamEcc,
                0.99,
                0.99,
                Some(&["soft_error", "crossover"]),
            ));
            // scrubbing removes latent upsets before they accumulate
            a.diagnostics.push(claim(
                TechniqueId::Scrubbing,
                0.90,
                0.0,
                Some(&["soft_error"]),
            ));
            // hard faults: cell defects are visible to the decoder, but
            // faults in the encode path produce *valid* wrong code words —
            // only the coder-output checker closes that hole
            a.diagnostics
                .push(claim(TechniqueId::RamEcc, 0.90, 0.90, Some(&["dc_fault"])));
            if cfg.coder_output_checker {
                a.diagnostics.push(claim(
                    TechniqueId::SyndromeCheck,
                    0.99,
                    0.99,
                    Some(&["dc_fault"]),
                ));
            }
            if cfg.address_in_ecc {
                a.diagnostics.push(claim(
                    TechniqueId::AddressInCode,
                    0.99,
                    0.99,
                    Some(&["addressing"]),
                ));
            }
        } else if name.contains("wbuf") {
            // write buffer registers: short-lived contents. Word parity is
            // credited "low" by Annex A (table A.5), so the honest claim is
            // the 60 % cap — claiming more would only be capped back by the
            // worksheet (and flagged by the lint).
            a.lifetime_exposure = 0.5;
            if cfg.write_buffer_parity {
                a.diagnostics
                    .push(claim(TechniqueId::WordParity, 0.60, 0.60, None));
            }
        } else if name.contains("addr") && !name.starts_with("pi/") {
            // address latches (read, write and pipelined copies): the
            // folded address signature detects *wrong* addressing, but a
            // lost transaction ("no addressing", e.g. a dropped latch
            // enable) reads a consistent other word — invisible to the
            // code. The injection campaign (T5) measured exactly this,
            // so the claim stays below the Annex cap.
            if cfg.address_in_ecc {
                a.diagnostics
                    .push(claim(TechniqueId::AddressInCode, 0.85, 0.85, None));
            }
        } else if name.contains("decoder/pipe") {
            a.lifetime_exposure = 0.4;
            if cfg.redundant_pipeline_checker {
                a.diagnostics
                    .push(claim(TechniqueId::RedundantComparator, 0.99, 0.99, None));
            }
            if cfg.distributed_syndrome {
                a.diagnostics
                    .push(claim(TechniqueId::SyndromeCheck, 0.90, 0.90, None));
            }
        } else if name.starts_with("po/rdata") || name.starts_with("po/rvalid") {
            // the decoder output cone: the stage-2 checkers guard the coded
            // part of the path well against permanent faults (they
            // eventually disturb checked state), but a transient in the
            // correction logic or at the port itself slips past them — the
            // SW start-up test is what catches stuck output stages
            if cfg.redundant_pipeline_checker {
                a.diagnostics
                    .push(claim(TechniqueId::RedundantComparator, 0.10, 0.80, None));
            }
            if cfg.distributed_syndrome {
                a.diagnostics
                    .push(claim(TechniqueId::SyndromeCheck, 0.10, 0.80, None));
            }
            if cfg.sw_startup_test {
                // start-up tests catch stuck output stages, not transients
                a.diagnostics
                    .push(claim(TechniqueId::SwSelfTest, 0.0, 0.90, None));
            }
        } else if name.starts_with("mce/mpu") {
            // the MPU protects the bus view of the memory; its own faults
            // are partially self-revealing (wrong denials alarm)
            a.diagnostics
                .push(claim(TechniqueId::MpuAccessCheck, 0.90, 0.90, None));
        } else if name.starts_with("ctrl/bist") {
            // BIST control logic: the paper's baseline left it uncovered
            // (it tops the criticality ranking); the hardened flow credits
            // the duplicated-counter comparator once the SW start-up test
            // exercises it
            if cfg.sw_startup_test {
                a.diagnostics
                    .push(claim(TechniqueId::RedundantComparator, 0.90, 0.90, None));
            }
        } else if name.starts_with("ctrl") {
            // controller state and output registers: contents are consumed
            // within a cycle or two (very short lifetime zeta — a transient
            // matters only if it lands in the narrow read-out window)
            a.freq = FreqClass::High;
            a.lifetime_exposure = 0.25;
            if cfg.sw_startup_test {
                // start-up tests reveal permanent faults; they cannot see
                // mid-mission transients (validated by injection, T5)
                a.diagnostics
                    .push(claim(TechniqueId::SwSelfTest, 0.0, 0.90, None));
            }
        } else if name.starts_with("critnet/") {
            // clock/reset roots: watchdog supervision (present in both
            // configurations — a watchdog is table stakes)
            a.diagnostics.push(claim(
                TechniqueId::WatchdogSeparateTimeBase,
                0.90,
                0.90,
                None,
            ));
        } else if name.starts_with("pi/") {
            // bus inputs: supervised by protocol-level time-out at system
            // level in both configurations
            a.freq = FreqClass::Medium;
            a.diagnostics
                .push(claim(TechniqueId::BusTimeout, 0.90, 0.90, None));
        }
    });
}

/// Builds the complete worksheet for a configuration over an extracted zone
/// set (convenience wrapper used by experiments and examples).
pub fn build_worksheet<'a>(zones: &'a ZoneSet, cfg: &MemSysConfig) -> Worksheet<'a> {
    let mut ws = Worksheet::new(zones);
    apply_assumptions(&mut ws, cfg);
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::build_netlist;
    use socfmea_core::extract_zones;

    fn fmea_sff(cfg: &MemSysConfig) -> f64 {
        let nl = build_netlist(cfg).unwrap();
        let zones = extract_zones(&nl, &extract_config());
        let ws = build_worksheet(&zones, cfg);
        ws.compute().sff().unwrap()
    }

    #[test]
    fn hardened_beats_baseline_substantially() {
        let base = fmea_sff(&MemSysConfig::baseline());
        let hard = fmea_sff(&MemSysConfig::hardened());
        assert!(hard > base + 0.02, "base={base:.4} hard={hard:.4}");
        assert!(
            hard > 0.99,
            "hardened must clear the SIL3 bar, got {hard:.4}"
        );
        assert!(
            base < 0.99,
            "baseline must miss the SIL3 bar, got {base:.4}"
        );
    }

    #[test]
    fn each_measure_contributes() {
        let base = fmea_sff(&MemSysConfig::baseline());
        for (name, cfg) in [
            (
                "address_in_ecc",
                MemSysConfig {
                    address_in_ecc: true,
                    ..MemSysConfig::baseline()
                },
            ),
            (
                "write_buffer_parity",
                MemSysConfig {
                    write_buffer_parity: true,
                    ..MemSysConfig::baseline()
                },
            ),
            (
                "coder_output_checker",
                MemSysConfig {
                    coder_output_checker: true,
                    ..MemSysConfig::baseline()
                },
            ),
            (
                "redundant_pipeline_checker",
                MemSysConfig {
                    redundant_pipeline_checker: true,
                    ..MemSysConfig::baseline()
                },
            ),
            (
                "sw_startup_test",
                MemSysConfig {
                    sw_startup_test: true,
                    ..MemSysConfig::baseline()
                },
            ),
        ] {
            let sff = fmea_sff(&cfg);
            assert!(
                sff > base,
                "measure {name} must improve SFF: {sff:.4} <= {base:.4}"
            );
        }
    }

    #[test]
    fn memory_zones_are_variable_memory_class() {
        let cfg = MemSysConfig::hardened();
        let nl = build_netlist(&cfg).unwrap();
        let zones = extract_zones(&nl, &extract_config());
        let w0 = zones.zone_by_name("mem/array/word0").expect("word zone");
        assert_eq!(w0.class, ComponentClass::VariableMemory);
        let mpu = zones
            .zones()
            .iter()
            .find(|z| z.name.starts_with("mce/mpu"))
            .expect("mpu zone");
        assert_eq!(mpu.class, ComponentClass::Bus);
    }
}
