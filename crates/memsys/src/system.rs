//! Behavioural model of the complete memory sub-system of Figure 5.
//!
//! The gate-level model in [`crate::rtl`] is what the FMEA flow analyses;
//! this behavioural twin exists for fast functional exploration, for the
//! examples, and as the oracle the gate-level tests compare against.

use crate::config::MemSysConfig;
use crate::ecc::{Codec, DecodeStatus};
use crate::memory::FaultyMemory;
use crate::mpu::{Master, Mpu, MpuViolation, PagePermissions};
use crate::scrub::Scrubber;
use std::fmt;

/// Saturating alarm counters — one per alarm pin of the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Alarms {
    /// Single-bit errors corrected by the decoder.
    pub corrected: u64,
    /// Uncorrectable (double/addressing) errors detected.
    pub uncorrectable: u64,
    /// Write-buffer parity mismatches.
    pub write_buffer: u64,
    /// MPU access violations.
    pub mpu: u64,
    /// Coder-output checker hits (faults in the encoder itself).
    pub coder: u64,
}

impl Alarms {
    /// Total alarm events.
    pub fn total(&self) -> u64 {
        self.corrected + self.uncorrectable + self.write_buffer + self.mpu + self.coder
    }
}

impl fmt::Display for Alarms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrected={} uncorrectable={} wbuf={} mpu={} coder={}",
            self.corrected, self.uncorrectable, self.write_buffer, self.mpu, self.coder
        )
    }
}

/// Why a read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The MPU denied the access.
    Denied(MpuViolation),
    /// The decoder flagged an uncorrectable error.
    Uncorrectable,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Denied(v) => write!(f, "access denied: {v}"),
            ReadError::Uncorrectable => f.write_str("uncorrectable memory error"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A pending write-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WbufEntry {
    addr: u32,
    data: u32,
    parity: bool,
}

/// The behavioural memory sub-system: memory array + F-MEM (codec,
/// scrubbing, alarms) + MCE (MPU, DMA privileges).
///
/// # Example
///
/// ```
/// use socfmea_memsys::config::MemSysConfig;
/// use socfmea_memsys::mpu::Master;
/// use socfmea_memsys::system::MemorySubsystem;
///
/// let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
/// sys.bus_write(3, 0xcafe_f00d, Master::Cpu, false)?;
/// assert_eq!(sys.bus_read(3, Master::Cpu, false)?, 0xcafe_f00d);
/// // a latent soft error is corrected transparently and logged:
/// sys.memory_mut().inject_soft_error(3, 7);
/// assert_eq!(sys.bus_read(3, Master::Cpu, false)?, 0xcafe_f00d);
/// assert_eq!(sys.alarms().corrected, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    cfg: MemSysConfig,
    codec: Codec,
    mem: FaultyMemory,
    mpu: Mpu,
    scrubber: Scrubber,
    alarms: Alarms,
    wbuf: Option<WbufEntry>,
    /// Injectable write-buffer corruption: XORed into the buffered data at
    /// flush time (models a register fault in the buffer).
    wbuf_corruption: u32,
}

impl MemorySubsystem {
    /// Builds the sub-system for a configuration.
    pub fn new(cfg: MemSysConfig) -> MemorySubsystem {
        cfg.validate();
        MemorySubsystem {
            codec: Codec::new(cfg.address_in_ecc),
            mem: FaultyMemory::new(cfg.words),
            mpu: Mpu::new(cfg.pages, cfg.words_per_page() as u32),
            scrubber: Scrubber::new(cfg.words as u32),
            alarms: Alarms::default(),
            wbuf: None,
            wbuf_corruption: 0,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemSysConfig {
        &self.cfg
    }

    /// Current alarm counters.
    pub fn alarms(&self) -> Alarms {
        self.alarms
    }

    /// Mutable access to the raw memory array (fault injection).
    pub fn memory_mut(&mut self) -> &mut FaultyMemory {
        &mut self.mem
    }

    /// Mutable access to the MPU (page setup).
    pub fn mpu_mut(&mut self) -> &mut Mpu {
        &mut self.mpu
    }

    /// Sets one page's permissions (convenience).
    pub fn protect_page(&mut self, page: usize, perm: PagePermissions) {
        self.mpu.set_page(page, perm);
    }

    /// Injects a persistent corruption into the write buffer datapath.
    pub fn corrupt_write_buffer(&mut self, xor_mask: u32) {
        self.wbuf_corruption = xor_mask;
    }

    fn flush_wbuf(&mut self) {
        let Some(entry) = self.wbuf.take() else {
            return;
        };
        let corrupted = entry.data ^ self.wbuf_corruption;
        if self.cfg.write_buffer_parity {
            let parity_now = (corrupted.count_ones() % 2) == 1;
            if parity_now != entry.parity {
                // parity caught the buffer corruption: alarm and drop the
                // write (the bus master must retry)
                self.alarms.write_buffer += 1;
                return;
            }
        }
        let code = self.codec.encode(corrupted, entry.addr);
        if self.cfg.coder_output_checker {
            // recompute the syndrome of the freshly generated code word; a
            // fault in the coder shows as a nonzero syndrome right here
            if self.codec.syndrome(code, entry.addr) != 0 {
                self.alarms.coder += 1;
            }
        }
        self.mem.write(entry.addr, code);
    }

    /// A bus write through the MCE.
    ///
    /// # Errors
    ///
    /// Returns the MPU violation when the access is denied (alarm raised,
    /// memory untouched).
    pub fn bus_write(
        &mut self,
        addr: u32,
        data: u32,
        master: Master,
        privileged: bool,
    ) -> Result<(), MpuViolation> {
        if let Err(v) = self.mpu.check(addr, true, master, privileged) {
            self.alarms.mpu += 1;
            return Err(v);
        }
        self.flush_wbuf();
        self.wbuf = Some(WbufEntry {
            addr,
            data,
            parity: (data.count_ones() % 2) == 1,
        });
        Ok(())
    }

    /// A bus read through the MCE: flushes the write buffer, decodes the
    /// word, corrects/logs/alarms as the decoder dictates.
    ///
    /// # Errors
    ///
    /// [`ReadError::Denied`] on MPU violation, [`ReadError::Uncorrectable`]
    /// when the decoder cannot restore the data.
    pub fn bus_read(
        &mut self,
        addr: u32,
        master: Master,
        privileged: bool,
    ) -> Result<u32, ReadError> {
        if let Err(v) = self.mpu.check(addr, false, master, privileged) {
            self.alarms.mpu += 1;
            return Err(ReadError::Denied(v));
        }
        self.flush_wbuf();
        let code = self.mem.read(addr);
        let decoded = self.codec.decode(code, addr);
        match decoded.status {
            DecodeStatus::Clean => Ok(decoded.data),
            DecodeStatus::Corrected(bit) => {
                self.alarms.corrected += 1;
                self.scrubber.log_correction(addr, bit);
                Ok(decoded.data)
            }
            DecodeStatus::DetectedUncorrectable => {
                self.alarms.uncorrectable += 1;
                Err(ReadError::Uncorrectable)
            }
        }
    }

    /// Spends idle time on repairs: first logged locations, then `budget`
    /// rows of background scanning (via the scrub DMA, which bypasses the
    /// MPU as a privileged master).
    pub fn idle(&mut self, budget: u32) -> u32 {
        self.flush_wbuf();
        let mut repaired = 0;
        while self.scrubber.pending() > 0 {
            if self
                .scrubber
                .scrub_next(&mut self.mem, &self.codec)
                .is_some()
            {
                repaired += 1;
            }
        }
        repaired
            + self
                .scrubber
                .background_scan(&mut self.mem, &self.codec, budget)
    }

    /// Lifetime scrub counters `(scanned, repaired)`.
    pub fn scrub_counters(&self) -> (u64, u64) {
        self.scrubber.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_through_the_buffer() {
        let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
        sys.bus_write(0, 1, Master::Cpu, false).unwrap();
        sys.bus_write(1, 2, Master::Cpu, false).unwrap(); // flushes addr 0
        assert_eq!(sys.bus_read(0, Master::Cpu, false).unwrap(), 1);
        assert_eq!(sys.bus_read(1, Master::Cpu, false).unwrap(), 2);
        assert_eq!(sys.alarms().total(), 0);
    }

    #[test]
    fn single_soft_error_corrected_then_scrubbed() {
        let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
        sys.bus_write(5, 0xffff_0000, Master::Cpu, false).unwrap();
        sys.idle(0);
        sys.memory_mut().inject_soft_error(5, 31);
        assert_eq!(sys.bus_read(5, Master::Cpu, false).unwrap(), 0xffff_0000);
        assert_eq!(sys.alarms().corrected, 1);
        // scrub repairs the stored word
        sys.idle(0);
        let raw = sys.memory_mut().read(5);
        assert_eq!(Codec::new(true).decode(raw, 5).syndrome, 0);
        assert!(sys.scrub_counters().1 >= 1);
    }

    #[test]
    fn double_error_is_uncorrectable() {
        let mut sys = MemorySubsystem::new(MemSysConfig::baseline());
        sys.bus_write(2, 7, Master::Cpu, false).unwrap();
        sys.idle(0);
        sys.memory_mut().inject_soft_error(2, 0);
        sys.memory_mut().inject_soft_error(2, 9);
        assert_eq!(
            sys.bus_read(2, Master::Cpu, false),
            Err(ReadError::Uncorrectable)
        );
        assert_eq!(sys.alarms().uncorrectable, 1);
    }

    #[test]
    fn addressing_fault_detected_only_with_address_in_ecc() {
        use crate::memory::AddressingFault;
        // hardened: remapped read -> syndrome disturbed -> uncorrectable or
        // miscorrect-but-alarmed (the address signature makes it visible)
        let mut hard = MemorySubsystem::new(MemSysConfig::hardened());
        hard.bus_write(1, 0x11, Master::Cpu, false).unwrap();
        hard.bus_write(2, 0x22, Master::Cpu, false).unwrap();
        hard.idle(0);
        hard.memory_mut()
            .inject_addressing(AddressingFault::Remap { from: 1, to: 2 });
        let r = hard.bus_read(1, Master::Cpu, false);
        let alarmed = hard.alarms().total() > 0;
        assert!(r.is_err() || alarmed, "addressing fault must be visible");

        // baseline: the same fault returns wrong data silently
        let mut base = MemorySubsystem::new(MemSysConfig::baseline());
        base.bus_write(1, 0x11, Master::Cpu, false).unwrap();
        base.bus_write(2, 0x22, Master::Cpu, false).unwrap();
        base.idle(0);
        base.memory_mut()
            .inject_addressing(AddressingFault::Remap { from: 1, to: 2 });
        assert_eq!(base.bus_read(1, Master::Cpu, false), Ok(0x22));
        assert_eq!(base.alarms().total(), 0, "silent dangerous failure");
    }

    #[test]
    fn write_buffer_parity_blocks_corrupted_writes() {
        let mut hard = MemorySubsystem::new(MemSysConfig::hardened());
        hard.bus_write(0, 0xaaaa, Master::Cpu, false).unwrap();
        hard.corrupt_write_buffer(0x4); // single-bit buffer fault
        hard.idle(0); // flush with corruption active
        assert_eq!(hard.alarms().write_buffer, 1);
        hard.corrupt_write_buffer(0);

        // baseline: the corrupted value is encoded as a *valid* code word —
        // the classic hole the paper closes
        let mut base = MemorySubsystem::new(MemSysConfig::baseline());
        base.bus_write(0, 0xaaaa, Master::Cpu, false).unwrap();
        base.corrupt_write_buffer(0x4);
        base.idle(0);
        base.corrupt_write_buffer(0);
        assert_eq!(base.bus_read(0, Master::Cpu, false), Ok(0xaaaa ^ 0x4));
        assert_eq!(base.alarms().total(), 0);
    }

    #[test]
    fn mpu_denies_and_alarms() {
        let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
        sys.protect_page(
            0,
            PagePermissions {
                read: true,
                write: false,
                privileged_only: false,
            },
        );
        assert!(sys.bus_write(0, 1, Master::Cpu, false).is_err());
        assert_eq!(sys.alarms().mpu, 1);
        // the scrub DMA is privileged and the page is readable
        assert!(sys.bus_read(0, Master::ScrubDma, false).is_ok());
    }

    #[test]
    fn background_scan_heals_idle_memory() {
        let mut sys = MemorySubsystem::new(MemSysConfig::hardened());
        // initialise every word: an uninitialised row is not a valid code
        // word and the scan would (correctly) rewrite it too
        for a in 0..sys.config().words as u32 {
            sys.bus_write(a, a * 7, Master::Cpu, false).unwrap();
        }
        sys.idle(0);
        sys.memory_mut().inject_soft_error(6, 3);
        let repaired = sys.idle(sys.config().words as u32);
        assert_eq!(repaired, 1);
        assert_eq!(sys.bus_read(6, Master::Cpu, false).unwrap(), 42);
        assert_eq!(sys.alarms().corrected, 0, "healed before any read saw it");
    }
}
