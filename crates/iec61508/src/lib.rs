//! Data model of the IEC 61508 concepts used by the SoC-level FMEA.
//!
//! This crate encodes, as plain data and total functions, the parts of
//! IEC 61508 (functional safety of E/E/PE safety-related systems) that the
//! methodology consumes:
//!
//! * [`sil`] — Safety Integrity Levels, Hardware Fault Tolerance, and the
//!   architectural-constraint tables granting a SIL from the Safe Failure
//!   Fraction (61508-2, tables 2 and 3 for type A / type B subsystems),
//! * [`dc`] — the three diagnostic-coverage levels (low 60 %, medium 90 %,
//!   high 99 %) the norm considers achievable,
//! * [`annex_a`] — a catalog of fault-detection techniques with the maximum
//!   diagnostic coverage the norm credits them with (61508-2 Annex A,
//!   tables A.2–A.13; the paper uses these as caps on claimed DDF),
//! * [`failure_modes`] — the failure modes the norm requires to be analysed
//!   per component class (e.g. for variable memories: DC fault model,
//!   dynamic cross-over, wrong addressing, soft errors),
//! * [`quantity`] — reliability quantities (FIT, failures/hour) and the
//!   SFF/DC ratio formulas.
//!
//! # Example
//!
//! ```
//! use socfmea_iec61508::{sil::{sil_from_sff, Hft, Sil, SubsystemType}, quantity::safe_failure_fraction};
//!
//! // A type-B (complex) subsystem with SFF = 99.38 % and no redundancy:
//! let sff = 0.9938;
//! assert_eq!(sil_from_sff(sff, Hft(0), SubsystemType::B), Some(Sil::Sil3));
//! // The same subsystem at 95 % only reaches SIL2:
//! assert_eq!(sil_from_sff(0.95, Hft(0), SubsystemType::B), Some(Sil::Sil2));
//! # let _ = safe_failure_fraction;
//! ```

pub mod annex_a;
pub mod dc;
pub mod failure_modes;
pub mod iso26262;
pub mod quantity;
pub mod sil;

pub use annex_a::{technique_catalog, DiagnosticTechnique, TechniqueId};
pub use dc::DcLevel;
pub use failure_modes::{required_failure_modes, ComponentClass, RequiredFailureMode};
pub use iso26262::{sil_to_asil, Asil, AutomotiveMetrics};
pub use quantity::{diagnostic_coverage, safe_failure_fraction, Fit, LambdaBreakdown};
pub use sil::{sil_from_sff, Hft, Sil, SubsystemType};
