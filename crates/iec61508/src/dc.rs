//! Diagnostic-coverage levels.
//!
//! IEC 61508-2 credits every recognised fault-detection technique with a
//! *maximum diagnostic coverage considered achievable*, expressed in three
//! levels (Annex C): low (60 %), medium (90 %) and high (99 %). The FMEA
//! worksheet caps every user-claimed DDF at the level of the technique that
//! implements it.

use std::fmt;

/// One of the three diagnostic-coverage levels of IEC 61508-2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DcLevel {
    /// Low coverage: 60 %.
    Low,
    /// Medium coverage: 90 %.
    Medium,
    /// High coverage: 99 %.
    High,
}

impl DcLevel {
    /// The coverage fraction the norm credits this level with.
    ///
    /// # Example
    ///
    /// ```
    /// use socfmea_iec61508::DcLevel;
    /// assert_eq!(DcLevel::High.fraction(), 0.99);
    /// assert_eq!(DcLevel::Medium.fraction(), 0.90);
    /// assert_eq!(DcLevel::Low.fraction(), 0.60);
    /// ```
    pub fn fraction(self) -> f64 {
        match self {
            DcLevel::Low => 0.60,
            DcLevel::Medium => 0.90,
            DcLevel::High => 0.99,
        }
    }

    /// Classifies a measured coverage into the highest level it supports
    /// (`None` below 60 %).
    pub fn classify(coverage: f64) -> Option<DcLevel> {
        if coverage >= 0.99 {
            Some(DcLevel::High)
        } else if coverage >= 0.90 {
            Some(DcLevel::Medium)
        } else if coverage >= 0.60 {
            Some(DcLevel::Low)
        } else {
            None
        }
    }

    /// Caps a claimed coverage at this level's fraction — the worksheet rule
    /// "computed ... by what accepted by the IEC norm (Annex 2, tables
    /// A.2-A.13, where it is specified the maximum diagnostic coverage
    /// considered achievable by a given technique)".
    pub fn cap(self, claimed: f64) -> f64 {
        claimed.min(self.fraction())
    }
}

impl fmt::Display for DcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DcLevel::Low => "low (60%)",
            DcLevel::Medium => "medium (90%)",
            DcLevel::High => "high (99%)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(DcLevel::Low < DcLevel::Medium);
        assert!(DcLevel::Medium < DcLevel::High);
    }

    #[test]
    fn classify_round_trips_fractions() {
        for lvl in [DcLevel::Low, DcLevel::Medium, DcLevel::High] {
            assert_eq!(DcLevel::classify(lvl.fraction()), Some(lvl));
        }
        assert_eq!(DcLevel::classify(0.3), None);
        assert_eq!(DcLevel::classify(0.95), Some(DcLevel::Medium));
    }

    #[test]
    fn cap_limits_optimistic_claims() {
        assert_eq!(DcLevel::Medium.cap(0.999), 0.90);
        assert_eq!(DcLevel::High.cap(0.95), 0.95);
        assert_eq!(DcLevel::Low.cap(0.0), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(DcLevel::High.to_string(), "high (99%)");
    }
}
