//! Failure modes the norm requires to be detected or analysed, per
//! component class.
//!
//! "The IEC61508 also specifies faults or failures to be detected during
//! operation or to be analyzed in the derivation of safe failure fraction"
//! (paper §2). These lists seed the FMEA worksheet: every sensible zone of a
//! given component class gets at least the failure modes required for that
//! class (61508-2, tables A.1 and related).

use std::fmt;

/// The component classes IEC 61508-2 table A.1 distinguishes for failure-mode
/// requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentClass {
    /// RAM and register files (variable memory ranges).
    VariableMemory,
    /// ROM / flash (invariable memory ranges).
    InvariableMemory,
    /// CPUs, sequencers, coders — processing units.
    ProcessingUnit,
    /// On-chip interconnect and off-chip bus interfaces.
    Bus,
    /// Discrete I/O paths.
    InputOutput,
    /// Clock generation and distribution.
    Clock,
    /// Power supply and distribution.
    PowerSupply,
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentClass::VariableMemory => "variable memory",
            ComponentClass::InvariableMemory => "invariable memory",
            ComponentClass::ProcessingUnit => "processing unit",
            ComponentClass::Bus => "bus",
            ComponentClass::InputOutput => "I/O",
            ComponentClass::Clock => "clock",
            ComponentClass::PowerSupply => "power supply",
        };
        f.write_str(s)
    }
}

/// Whether a failure mode is characteristically permanent, transient or
/// both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistence {
    /// Hard faults (stuck-at, opens/shorts, dead cells).
    Permanent,
    /// Soft errors, glitches, disturbances.
    Transient,
    /// Observable either way (e.g. wrong addressing).
    Both,
}

/// A failure mode the norm requires to be analysed for a component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequiredFailureMode {
    /// Short identifier used as the worksheet row key.
    pub key: &'static str,
    /// Norm wording (abridged).
    pub description: &'static str,
    /// Characteristic persistence.
    pub persistence: Persistence,
}

/// The failure modes required for `class`, per IEC 61508-2 table A.1 (the
/// variable-memory and processing-unit rows quote the paper §2 verbatim).
///
/// # Example
///
/// ```
/// use socfmea_iec61508::{required_failure_modes, ComponentClass};
///
/// let modes = required_failure_modes(ComponentClass::VariableMemory);
/// assert!(modes.iter().any(|m| m.key == "soft_error"));
/// ```
pub fn required_failure_modes(class: ComponentClass) -> &'static [RequiredFailureMode] {
    use Persistence::*;
    match class {
        ComponentClass::VariableMemory => &[
            RequiredFailureMode {
                key: "dc_fault",
                description: "DC fault model for data and addresses (stuck-at, stuck-open, shorts)",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "crossover",
                description: "dynamic cross-over for memory cells",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "addressing",
                description: "no, wrong or multiple addressing",
                persistence: Both,
            },
            RequiredFailureMode {
                key: "soft_error",
                description: "change of information caused by soft-errors",
                persistence: Transient,
            },
        ],
        ComponentClass::InvariableMemory => &[
            RequiredFailureMode {
                key: "dc_fault",
                description: "DC fault model for data and addresses",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "addressing",
                description: "no, wrong or multiple addressing",
                persistence: Both,
            },
        ],
        ComponentClass::ProcessingUnit => &[
            RequiredFailureMode {
                key: "dc_fault",
                description: "DC fault model for data and addresses of internal registers and RAMs",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "crossover",
                description: "dynamic cross-over for memory cells",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "wrong_coding",
                description: "wrong coding or wrong execution, including flag and state registers",
                persistence: Both,
            },
            RequiredFailureMode {
                key: "soft_error",
                description: "change of information caused by soft-errors",
                persistence: Transient,
            },
        ],
        ComponentClass::Bus => &[
            RequiredFailureMode {
                key: "dc_fault",
                description: "DC fault model for data, address and control lines",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "arbitration",
                description: "no or continuous or wrong arbitration",
                persistence: Both,
            },
            RequiredFailureMode {
                key: "timeout",
                description: "messages lost or delayed beyond tolerance",
                persistence: Transient,
            },
        ],
        ComponentClass::InputOutput => &[
            RequiredFailureMode {
                key: "dc_fault",
                description: "DC fault model on I/O lines",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "drift",
                description: "drift and oscillation",
                persistence: Transient,
            },
        ],
        ComponentClass::Clock => &[
            RequiredFailureMode {
                key: "stuck_clock",
                description: "clock stuck (no edges) or sub-/super-harmonic",
                persistence: Permanent,
            },
            RequiredFailureMode {
                key: "jitter",
                description: "period jitter outside tolerance",
                persistence: Transient,
            },
        ],
        ComponentClass::PowerSupply => &[
            RequiredFailureMode {
                key: "out_of_range",
                description: "voltage outside the specified range",
                persistence: Both,
            },
            RequiredFailureMode {
                key: "brownout",
                description: "transient dips affecting large silicon areas",
                persistence: Transient,
            },
        ],
    }
}

/// All component classes, for exhaustive iteration.
pub const ALL_CLASSES: [ComponentClass; 7] = [
    ComponentClass::VariableMemory,
    ComponentClass::InvariableMemory,
    ComponentClass::ProcessingUnit,
    ComponentClass::Bus,
    ComponentClass::InputOutput,
    ComponentClass::Clock,
    ComponentClass::PowerSupply,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_modes_with_unique_keys() {
        for class in ALL_CLASSES {
            let modes = required_failure_modes(class);
            assert!(!modes.is_empty(), "{class} must require failure modes");
            let mut keys: Vec<_> = modes.iter().map(|m| m.key).collect();
            keys.sort_unstable();
            let len = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), len, "{class} has duplicate mode keys");
        }
    }

    #[test]
    fn paper_quoted_memory_modes_present() {
        let modes = required_failure_modes(ComponentClass::VariableMemory);
        for key in ["dc_fault", "crossover", "addressing", "soft_error"] {
            assert!(modes.iter().any(|m| m.key == key), "missing {key}");
        }
    }

    #[test]
    fn paper_quoted_processing_modes_present() {
        let modes = required_failure_modes(ComponentClass::ProcessingUnit);
        assert!(modes.iter().any(|m| m.key == "wrong_coding"));
    }

    #[test]
    fn persistence_is_meaningful() {
        let modes = required_failure_modes(ComponentClass::VariableMemory);
        let soft = modes.iter().find(|m| m.key == "soft_error").unwrap();
        assert_eq!(soft.persistence, Persistence::Transient);
        let dc = modes.iter().find(|m| m.key == "dc_fault").unwrap();
        assert_eq!(dc.persistence, Persistence::Permanent);
    }
}
