//! Safety Integrity Levels and the architectural constraints granting them.

use std::fmt;

/// A Safety Integrity Level: "the discrete level (one out of a possible
/// four) for specifying the safety integrity requirements of the safety
/// functions", SIL 4 highest, SIL 1 lowest (IEC 61508-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sil {
    /// Lowest safety integrity.
    Sil1,
    /// Safety integrity level 2.
    Sil2,
    /// Required for x-by-wire / active-brake class functions (paper §2).
    Sil3,
    /// Highest safety integrity.
    Sil4,
}

impl Sil {
    /// The numeric level, 1–4.
    pub fn level(self) -> u8 {
        match self {
            Sil::Sil1 => 1,
            Sil::Sil2 => 2,
            Sil::Sil3 => 3,
            Sil::Sil4 => 4,
        }
    }

    /// Builds a SIL from its numeric level.
    pub fn from_level(level: u8) -> Option<Sil> {
        match level {
            1 => Some(Sil::Sil1),
            2 => Some(Sil::Sil2),
            3 => Some(Sil::Sil3),
            4 => Some(Sil::Sil4),
            _ => None,
        }
    }
}

impl fmt::Display for Sil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIL{}", self.level())
    }
}

/// Hardware Fault Tolerance: "a system with a HFT of N means that N+1 faults
/// could cause a loss of the safety function" (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hft(pub u8);

impl fmt::Display for Hft {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HFT={}", self.0)
    }
}

/// Subsystem classification for the architectural-constraint tables of
/// IEC 61508-2 §7.4.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubsystemType {
    /// Type A: simple devices whose failure modes are well defined and whose
    /// behaviour under fault conditions can be completely determined.
    A,
    /// Type B: complex components (microprocessors, SoCs, ASICs) — the case
    /// relevant to SoC-level FMEA.
    B,
}

/// The SFF band a subsystem falls into, used by the constraint tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SffBand {
    /// SFF < 60 %.
    Below60,
    /// 60 % ≤ SFF < 90 %.
    From60To90,
    /// 90 % ≤ SFF < 99 %.
    From90To99,
    /// SFF ≥ 99 %.
    AtLeast99,
}

impl SffBand {
    /// Classifies a safe-failure fraction (0..=1).
    ///
    /// # Panics
    ///
    /// Panics if `sff` is not a finite fraction within `0.0..=1.0`.
    pub fn of(sff: f64) -> SffBand {
        assert!(
            sff.is_finite() && (0.0..=1.0).contains(&sff),
            "SFF must be a fraction in 0..=1, got {sff}"
        );
        if sff < 0.60 {
            SffBand::Below60
        } else if sff < 0.90 {
            SffBand::From60To90
        } else if sff < 0.99 {
            SffBand::From90To99
        } else {
            SffBand::AtLeast99
        }
    }
}

impl fmt::Display for SffBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SffBand::Below60 => "SFF < 60%",
            SffBand::From60To90 => "60% <= SFF < 90%",
            SffBand::From90To99 => "90% <= SFF < 99%",
            SffBand::AtLeast99 => "SFF >= 99%",
        };
        f.write_str(s)
    }
}

/// Maximum SIL claimable for a subsystem given its SFF and HFT, per the
/// architectural constraints of IEC 61508-2 (table 2 for type A, table 3 for
/// type B). `None` means no SIL may be claimed (type B, SFF < 60 %, HFT 0).
///
/// HFT values above 2 saturate at the HFT = 2 column.
///
/// # Panics
///
/// Panics if `sff` is not a fraction in `0.0..=1.0`.
///
/// # Example
///
/// ```
/// use socfmea_iec61508::sil::{sil_from_sff, Hft, Sil, SubsystemType};
///
/// // The paper's target: SIL3 with HFT = 0 requires SFF >= 99 % (type B).
/// assert_eq!(sil_from_sff(0.992, Hft(0), SubsystemType::B), Some(Sil::Sil3));
/// assert_eq!(sil_from_sff(0.95, Hft(0), SubsystemType::B), Some(Sil::Sil2));
/// // With HFT = 1, SFF > 90 % suffices for SIL3.
/// assert_eq!(sil_from_sff(0.95, Hft(1), SubsystemType::B), Some(Sil::Sil3));
/// assert_eq!(sil_from_sff(0.30, Hft(0), SubsystemType::B), None);
/// ```
pub fn sil_from_sff(sff: f64, hft: Hft, subsystem: SubsystemType) -> Option<Sil> {
    let band = SffBand::of(sff);
    let col = hft.0.min(2) as usize;
    // Rows: SFF band; columns: HFT 0, 1, 2. Values are numeric SIL; 0 = not
    // allowed; 4 caps at SIL4.
    let table_a: [[u8; 3]; 4] = [
        [1, 2, 3], // < 60%
        [2, 3, 4], // 60–90%
        [3, 4, 4], // 90–99%
        [3, 4, 4], // >= 99%
    ];
    let table_b: [[u8; 3]; 4] = [
        [0, 1, 2], // < 60%: not allowed at HFT 0
        [1, 2, 3], // 60–90%
        [2, 3, 4], // 90–99%
        [3, 4, 4], // >= 99%
    ];
    let table = match subsystem {
        SubsystemType::A => table_a,
        SubsystemType::B => table_b,
    };
    let row = match band {
        SffBand::Below60 => 0,
        SffBand::From60To90 => 1,
        SffBand::From90To99 => 2,
        SffBand::AtLeast99 => 3,
    };
    Sil::from_level(table[row][col])
}

/// The minimum SFF band required to claim `target` at the given HFT, or
/// `None` if the target is unreachable at that HFT (useful for gap
/// reporting: "to reach SIL3 at HFT 0 you need SFF ≥ 99 %").
pub fn required_sff_band(target: Sil, hft: Hft, subsystem: SubsystemType) -> Option<SffBand> {
    const BANDS: [SffBand; 4] = [
        SffBand::Below60,
        SffBand::From60To90,
        SffBand::From90To99,
        SffBand::AtLeast99,
    ];
    const PROBE: [f64; 4] = [0.0, 0.60, 0.90, 0.99];
    for (band, probe) in BANDS.iter().zip(PROBE) {
        if let Some(s) = sil_from_sff(probe, hft, subsystem) {
            if s >= target {
                return Some(*band);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_rules_hold_for_type_b() {
        // "With a HFT equal to zero, a SFF equal or greater than 99% is
        //  required in order that the system or component can be granted
        //  with SIL3."
        assert_eq!(
            sil_from_sff(0.99, Hft(0), SubsystemType::B),
            Some(Sil::Sil3)
        );
        assert!(sil_from_sff(0.989, Hft(0), SubsystemType::B).unwrap() < Sil::Sil3);
        // "With a HFT equal to one, the SFF should be greater than 90%."
        assert_eq!(
            sil_from_sff(0.91, Hft(1), SubsystemType::B),
            Some(Sil::Sil3)
        );
        assert!(sil_from_sff(0.89, Hft(1), SubsystemType::B).unwrap() < Sil::Sil3);
    }

    #[test]
    fn type_b_low_sff_hft0_is_disallowed() {
        assert_eq!(sil_from_sff(0.5, Hft(0), SubsystemType::B), None);
        assert_eq!(sil_from_sff(0.5, Hft(1), SubsystemType::B), Some(Sil::Sil1));
    }

    #[test]
    fn type_a_is_one_band_more_permissive() {
        for sff in [0.3, 0.7, 0.95, 0.995] {
            for hft in [Hft(0), Hft(1), Hft(2)] {
                let a = sil_from_sff(sff, hft, SubsystemType::A);
                let b = sil_from_sff(sff, hft, SubsystemType::B);
                match (a, b) {
                    (Some(a), Some(b)) => assert!(a >= b, "type A must dominate"),
                    (Some(_), None) => {}
                    other => panic!("unexpected combination {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hft_saturates_above_two() {
        assert_eq!(
            sil_from_sff(0.95, Hft(7), SubsystemType::B),
            sil_from_sff(0.95, Hft(2), SubsystemType::B)
        );
    }

    #[test]
    fn band_boundaries_are_inclusive_exclusive() {
        assert_eq!(SffBand::of(0.0), SffBand::Below60);
        assert_eq!(SffBand::of(0.5999), SffBand::Below60);
        assert_eq!(SffBand::of(0.60), SffBand::From60To90);
        assert_eq!(SffBand::of(0.8999), SffBand::From60To90);
        assert_eq!(SffBand::of(0.90), SffBand::From90To99);
        assert_eq!(SffBand::of(0.99), SffBand::AtLeast99);
        assert_eq!(SffBand::of(1.0), SffBand::AtLeast99);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn sff_must_be_a_fraction() {
        let _ = SffBand::of(99.38); // percent instead of fraction: rejected
    }

    #[test]
    fn required_band_for_sil3() {
        assert_eq!(
            required_sff_band(Sil::Sil3, Hft(0), SubsystemType::B),
            Some(SffBand::AtLeast99)
        );
        assert_eq!(
            required_sff_band(Sil::Sil3, Hft(1), SubsystemType::B),
            Some(SffBand::From90To99)
        );
        assert_eq!(required_sff_band(Sil::Sil4, Hft(0), SubsystemType::B), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Sil::Sil3.to_string(), "SIL3");
        assert_eq!(Hft(1).to_string(), "HFT=1");
        assert_eq!(SffBand::AtLeast99.to_string(), "SFF >= 99%");
        assert_eq!(Sil::from_level(5), None);
    }
}
