//! Reliability quantities and the SFF / DC formulas.
//!
//! The two metrics the methodology exists to compute (paper §4):
//!
//! ```text
//! DC  = λ_DD / λ_D
//! SFF = (λ_S + λ_DD) / (λ_S + λ_D)          with λ_D = λ_DD + λ_DU
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A failure rate in FIT (failures in 10⁹ device-hours), the unit
/// reliability handbooks and the paper's "elementary failure in time (FIT)
/// per gate and per register" use.
///
/// # Example
///
/// ```
/// use socfmea_iec61508::Fit;
///
/// let per_gate = Fit(0.001);
/// let cone = per_gate * 250.0; // 250 gates
/// assert!((cone.0 - 0.25).abs() < 1e-12);
/// assert!((cone.per_hour() - 0.25e-9).abs() < 1e-24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fit(pub f64);

impl Fit {
    /// Zero failure rate.
    pub const ZERO: Fit = Fit(0.0);

    /// Converts to failures per hour.
    pub fn per_hour(self) -> f64 {
        self.0 * 1e-9
    }

    /// Builds from failures per hour.
    pub fn from_per_hour(rate: f64) -> Fit {
        Fit(rate * 1e9)
    }

    /// True when the rate is a valid, finite, non-negative number.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for Fit {
    type Output = Fit;

    fn add(self, rhs: Fit) -> Fit {
        Fit(self.0 + rhs.0)
    }
}

impl AddAssign for Fit {
    fn add_assign(&mut self, rhs: Fit) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Fit {
    type Output = Fit;

    fn mul(self, rhs: f64) -> Fit {
        Fit(self.0 * rhs)
    }
}

impl Sum for Fit {
    fn sum<I: Iterator<Item = Fit>>(iter: I) -> Fit {
        iter.fold(Fit::ZERO, Fit::add)
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} FIT", self.0)
    }
}

/// The four-way split of a failure rate the norm works with.
///
/// Invariant: all components are non-negative;
/// `dangerous = dangerous_detected + dangerous_undetected` by construction
/// of [`total_dangerous`](Self::total_dangerous).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LambdaBreakdown {
    /// λ_S: failures without the potential to put the system in a hazardous
    /// or fail-to-function state.
    pub safe: Fit,
    /// λ_DD: dangerous failures detected by the diagnostics.
    pub dangerous_detected: Fit,
    /// λ_DU: dangerous failures the diagnostics miss.
    pub dangerous_undetected: Fit,
}

impl LambdaBreakdown {
    /// λ_D = λ_DD + λ_DU.
    pub fn total_dangerous(&self) -> Fit {
        self.dangerous_detected + self.dangerous_undetected
    }

    /// λ = λ_S + λ_D.
    pub fn total(&self) -> Fit {
        self.safe + self.total_dangerous()
    }

    /// Component-wise accumulation.
    pub fn accumulate(&mut self, other: &LambdaBreakdown) {
        self.safe += other.safe;
        self.dangerous_detected += other.dangerous_detected;
        self.dangerous_undetected += other.dangerous_undetected;
    }

    /// The diagnostic coverage of this breakdown; `None` when there are no
    /// dangerous failures at all (DC is then undefined — treat as fully
    /// covered).
    pub fn diagnostic_coverage(&self) -> Option<f64> {
        diagnostic_coverage(self.dangerous_detected, self.dangerous_undetected)
    }

    /// The safe failure fraction of this breakdown; `None` for an all-zero
    /// breakdown.
    pub fn safe_failure_fraction(&self) -> Option<f64> {
        safe_failure_fraction(
            self.safe,
            self.dangerous_detected,
            self.dangerous_undetected,
        )
    }
}

/// DC = λ_DD / (λ_DD + λ_DU); `None` when λ_D = 0.
///
/// # Example
///
/// ```
/// use socfmea_iec61508::{diagnostic_coverage, Fit};
///
/// let dc = diagnostic_coverage(Fit(99.0), Fit(1.0)).unwrap();
/// assert!((dc - 0.99).abs() < 1e-12);
/// assert_eq!(diagnostic_coverage(Fit(0.0), Fit(0.0)), None);
/// ```
pub fn diagnostic_coverage(lambda_dd: Fit, lambda_du: Fit) -> Option<f64> {
    let d = lambda_dd.0 + lambda_du.0;
    if d <= 0.0 {
        return None;
    }
    Some(lambda_dd.0 / d)
}

/// SFF = (λ_S + λ_DD) / (λ_S + λ_DD + λ_DU); `None` when the total is zero.
///
/// # Example
///
/// ```
/// use socfmea_iec61508::{safe_failure_fraction, Fit};
///
/// // 50 safe + 45 detected dangerous out of 100 total -> SFF = 95 %
/// let sff = safe_failure_fraction(Fit(50.0), Fit(45.0), Fit(5.0)).unwrap();
/// assert!((sff - 0.95).abs() < 1e-12);
/// ```
pub fn safe_failure_fraction(lambda_s: Fit, lambda_dd: Fit, lambda_du: Fit) -> Option<f64> {
    let total = lambda_s.0 + lambda_dd.0 + lambda_du.0;
    if total <= 0.0 {
        return None;
    }
    Some((lambda_s.0 + lambda_dd.0) / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_arithmetic_and_conversion() {
        let a = Fit(2.0) + Fit(3.0);
        assert_eq!(a, Fit(5.0));
        let mut b = Fit(1.0);
        b += Fit(0.5);
        assert_eq!(b, Fit(1.5));
        assert!((Fit::from_per_hour(Fit(7.0).per_hour()).0 - 7.0).abs() < 1e-9);
        let total: Fit = [Fit(1.0), Fit(2.0)].into_iter().sum();
        assert_eq!(total, Fit(3.0));
        assert!(Fit(0.0).is_valid());
        assert!(!Fit(f64::NAN).is_valid());
        assert!(!Fit(-1.0).is_valid());
        assert_eq!(Fit(1.5).to_string(), "1.5000 FIT");
    }

    #[test]
    fn breakdown_totals_and_ratios() {
        let b = LambdaBreakdown {
            safe: Fit(60.0),
            dangerous_detected: Fit(39.0),
            dangerous_undetected: Fit(1.0),
        };
        assert_eq!(b.total_dangerous(), Fit(40.0));
        assert_eq!(b.total(), Fit(100.0));
        assert!((b.diagnostic_coverage().unwrap() - 0.975).abs() < 1e-12);
        assert!((b.safe_failure_fraction().unwrap() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn accumulate_is_component_wise() {
        let mut a = LambdaBreakdown::default();
        a.accumulate(&LambdaBreakdown {
            safe: Fit(1.0),
            dangerous_detected: Fit(2.0),
            dangerous_undetected: Fit(3.0),
        });
        a.accumulate(&LambdaBreakdown {
            safe: Fit(10.0),
            dangerous_detected: Fit(20.0),
            dangerous_undetected: Fit(30.0),
        });
        assert_eq!(a.safe, Fit(11.0));
        assert_eq!(a.dangerous_detected, Fit(22.0));
        assert_eq!(a.dangerous_undetected, Fit(33.0));
    }

    #[test]
    fn degenerate_ratios_are_none() {
        assert_eq!(LambdaBreakdown::default().safe_failure_fraction(), None);
        assert_eq!(LambdaBreakdown::default().diagnostic_coverage(), None);
    }

    #[test]
    fn perfect_diagnostics_give_unity_dc() {
        assert_eq!(diagnostic_coverage(Fit(5.0), Fit(0.0)), Some(1.0));
        assert_eq!(
            safe_failure_fraction(Fit(0.0), Fit(5.0), Fit(0.0)),
            Some(1.0)
        );
    }
}
