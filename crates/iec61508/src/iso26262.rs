//! ISO 26262 metrics — the automotive customization the paper anticipates.
//!
//! "International norms exist to define requirements for safety, such the
//! IEC61508 ... or its customization to the automotive field, the ISO26262,
//! still in the preliminary definition phase" (paper §1). The methodology
//! described by the paper later became the standard FMEDA flow for
//! ISO 26262 part 5; this module provides the automotive metric set so the
//! same worksheet can be read against either norm:
//!
//! * **ASIL** — Automotive Safety Integrity Levels A–D (QM below A),
//! * **SPFM** — single-point fault metric,
//!   `1 − Σλ_SPF+λ_RF / Σλ` ≈ the fraction of faults that are neither
//!   single-point nor residual (mirrors SFF with safe faults counted),
//! * **LFM** — latent fault metric, the fraction of remaining faults that
//!   cannot stay latent (multiple-point faults detected or perceived),
//! * **PMHF** — probabilistic metric for random hardware failures, the
//!   residual dangerous rate in failures/hour.

use crate::quantity::{Fit, LambdaBreakdown};
use std::fmt;

/// Automotive Safety Integrity Level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Asil {
    /// Quality managed — no ASIL requirement.
    Qm,
    /// ASIL A (lowest).
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D (highest; the x-by-wire class, like SIL3 in the paper).
    D,
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Asil::Qm => "QM",
            Asil::A => "ASIL A",
            Asil::B => "ASIL B",
            Asil::C => "ASIL C",
            Asil::D => "ASIL D",
        })
    }
}

/// The hardware architectural-metric targets of ISO 26262-5 (tables 4
/// and 5): required SPFM and LFM per ASIL. ASIL A sets no numeric target.
pub fn metric_targets(asil: Asil) -> Option<(f64, f64)> {
    match asil {
        Asil::Qm | Asil::A => None,
        Asil::B => Some((0.90, 0.60)),
        Asil::C => Some((0.97, 0.80)),
        Asil::D => Some((0.99, 0.90)),
    }
}

/// PMHF targets of ISO 26262-5 table 6, in failures/hour.
pub fn pmhf_target(asil: Asil) -> Option<f64> {
    match asil {
        Asil::Qm | Asil::A => None,
        Asil::B | Asil::C => Some(1e-7), // < 100 FIT
        Asil::D => Some(1e-8),           // < 10 FIT
    }
}

/// The automotive reading of a λ breakdown.
///
/// The mapping from the IEC-style split follows the standard FMEDA
/// convention the paper's flow feeds:
///
/// * λ_S — safe faults,
/// * λ_DD — detected dangerous = *multiple-point detected* faults (covered
///   by a safety mechanism),
/// * λ_DU — undetected dangerous = *single-point / residual* faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutomotiveMetrics {
    /// Single-point fault metric, `0..=1`.
    pub spfm: f64,
    /// Latent fault metric, `0..=1` (fraction of the non-single-point
    /// faults that are detected or safe rather than latent).
    pub lfm: f64,
    /// Probabilistic metric for random HW failures, failures/hour.
    pub pmhf: f64,
}

impl AutomotiveMetrics {
    /// Derives the metrics from a λ breakdown plus the *latent* share: the
    /// fraction of the detected-or-safe rate that belongs to diagnostic
    /// logic whose own faults stay unnoticed until a second fault arrives
    /// (multiple-point latent).
    ///
    /// Returns `None` for an all-zero breakdown.
    pub fn from_lambda(total: &LambdaBreakdown, latent: Fit) -> Option<AutomotiveMetrics> {
        let all = total.total();
        if all.0 <= 0.0 {
            return None;
        }
        // single-point/residual = dangerous undetected
        let spfm = 1.0 - total.dangerous_undetected.0 / all.0;
        // of the remaining (safe + detected) rate, the latent part is the
        // share that could hide a failed safety mechanism
        let remaining = all.0 - total.dangerous_undetected.0;
        let lfm = if remaining <= 0.0 {
            1.0
        } else {
            (1.0 - (latent.0.min(remaining)) / remaining).clamp(0.0, 1.0)
        };
        let pmhf = total.dangerous_undetected.per_hour();
        Some(AutomotiveMetrics { spfm, lfm, pmhf })
    }

    /// The highest ASIL whose SPFM/LFM *and* PMHF targets this metric set
    /// meets (`Asil::A` when only the no-target levels fit).
    pub fn achievable_asil(&self) -> Asil {
        for asil in [Asil::D, Asil::C, Asil::B] {
            let (spfm_t, lfm_t) = metric_targets(asil).expect("B..D have targets");
            let pmhf_t = pmhf_target(asil).expect("B..D have targets");
            if self.spfm >= spfm_t && self.lfm >= lfm_t && self.pmhf <= pmhf_t {
                return asil;
            }
        }
        Asil::A
    }

    /// Checks this metric set against one ASIL's targets.
    pub fn meets(&self, asil: Asil) -> bool {
        match (metric_targets(asil), pmhf_target(asil)) {
            (Some((s, l)), Some(p)) => self.spfm >= s && self.lfm >= l && self.pmhf <= p,
            _ => true, // QM / ASIL A have no numeric targets
        }
    }
}

impl fmt::Display for AutomotiveMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPFM {:.2}%  LFM {:.2}%  PMHF {:.3e}/h",
            self.spfm * 100.0,
            self.lfm * 100.0,
            self.pmhf
        )
    }
}

/// The conventional cross-reading between the two norms for a component
/// developed to a given SIL (the paper targets SIL3 ≈ ASIL D applications
/// like active braking / x-by-wire).
pub fn sil_to_asil(sil: crate::sil::Sil) -> Asil {
    match sil {
        crate::sil::Sil::Sil1 => Asil::A,
        crate::sil::Sil::Sil2 => Asil::B,
        crate::sil::Sil::Sil3 => Asil::D,
        crate::sil::Sil::Sil4 => Asil::D,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sil::Sil;

    fn breakdown(s: f64, dd: f64, du: f64) -> LambdaBreakdown {
        LambdaBreakdown {
            safe: Fit(s),
            dangerous_detected: Fit(dd),
            dangerous_undetected: Fit(du),
        }
    }

    #[test]
    fn spfm_mirrors_the_sff_shape() {
        // 99% covered: SPFM high
        let m = AutomotiveMetrics::from_lambda(&breakdown(60.0, 39.0, 1.0), Fit(0.0)).unwrap();
        assert!((m.spfm - 0.99).abs() < 1e-12);
        assert_eq!(m.lfm, 1.0);
        // uncovered: SPFM collapses
        let m = AutomotiveMetrics::from_lambda(&breakdown(0.0, 0.0, 10.0), Fit(0.0)).unwrap();
        assert_eq!(m.spfm, 0.0);
    }

    #[test]
    fn latent_share_reduces_lfm_only() {
        let base = AutomotiveMetrics::from_lambda(&breakdown(50.0, 49.0, 1.0), Fit(0.0)).unwrap();
        let with_latent =
            AutomotiveMetrics::from_lambda(&breakdown(50.0, 49.0, 1.0), Fit(19.8)).unwrap();
        assert_eq!(base.spfm, with_latent.spfm);
        assert!(with_latent.lfm < base.lfm);
        assert!((with_latent.lfm - 0.8).abs() < 1e-9);
    }

    #[test]
    fn asil_targets_are_ordered() {
        let d = metric_targets(Asil::D).unwrap();
        let c = metric_targets(Asil::C).unwrap();
        let b = metric_targets(Asil::B).unwrap();
        assert!(d.0 > c.0 && c.0 > b.0);
        assert!(d.1 > c.1 && c.1 > b.1);
        assert!(pmhf_target(Asil::D).unwrap() < pmhf_target(Asil::B).unwrap());
        assert_eq!(metric_targets(Asil::A), None);
    }

    #[test]
    fn achievable_asil_classification() {
        // SPFM 99.9%, tiny PMHF: ASIL D
        let m = AutomotiveMetrics {
            spfm: 0.999,
            lfm: 0.95,
            pmhf: 1e-9,
        };
        assert_eq!(m.achievable_asil(), Asil::D);
        assert!(m.meets(Asil::D));
        // SPFM 95%: only B
        let m = AutomotiveMetrics {
            spfm: 0.95,
            lfm: 0.95,
            pmhf: 1e-9,
        };
        assert_eq!(m.achievable_asil(), Asil::B);
        assert!(!m.meets(Asil::C));
        // PMHF too high for D even with perfect coverage metrics
        let m = AutomotiveMetrics {
            spfm: 1.0,
            lfm: 1.0,
            pmhf: 5e-8,
        };
        assert_eq!(m.achievable_asil(), Asil::C);
    }

    #[test]
    fn degenerate_breakdown_is_none() {
        assert_eq!(
            AutomotiveMetrics::from_lambda(&LambdaBreakdown::default(), Fit(0.0)),
            None
        );
    }

    #[test]
    fn sil_asil_cross_reading() {
        assert_eq!(sil_to_asil(Sil::Sil3), Asil::D);
        assert_eq!(sil_to_asil(Sil::Sil1), Asil::A);
        assert_eq!(Asil::D.to_string(), "ASIL D");
    }
}
