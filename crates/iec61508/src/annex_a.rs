//! Catalog of fault-detection/-control techniques with the maximum
//! diagnostic coverage IEC 61508-2 Annex A credits them with.
//!
//! The FMEA worksheet ("computed ... by what accepted by the IEC norm
//! (Annex 2, tables A.2-A.13 ...)", paper §4) uses this catalog to cap the
//! DDF a designer claims for each diagnostic measure. The entries below are
//! the representative subset relevant to memory sub-systems, processing
//! units, buses and clocks — in particular every technique instantiated by
//! the `socfmea-memsys` example.

use crate::dc::DcLevel;
use crate::failure_modes::ComponentClass;
use std::fmt;

/// Identifier of a technique in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TechniqueId {
    /// RAM monitoring with a modified Hamming code / ECC (table A.6).
    RamEcc,
    /// Double RAM with hardware or software comparison (table A.6).
    DoubleRamCompare,
    /// Parity bit per word for RAM/registers (table A.6/A.5).
    WordParity,
    /// RAM march / galpat test at start-up (table A.6).
    RamMarchTest,
    /// Memory scrubbing / periodic background read (fault forecasting).
    Scrubbing,
    /// Self-test by software, walking/limited patterns (table A.4).
    SwSelfTest,
    /// Comparator / duplicated logic with comparison (table A.3).
    RedundantComparator,
    /// Coded processing / syndrome checking of coded data paths.
    SyndromeCheck,
    /// Address coding: folding the address into the data code word.
    AddressInCode,
    /// Full hardware redundancy on a bus (table A.7).
    BusFullRedundancy,
    /// Information redundancy on a bus: parity/CRC (table A.7).
    BusParityCrc,
    /// Time-out / watchdog supervision of bus transfers (table A.7).
    BusTimeout,
    /// Memory protection unit: access permission checking.
    MpuAccessCheck,
    /// Watchdog with separate time base (table A.10, clock).
    WatchdogSeparateTimeBase,
}

/// A catalog entry: a technique, where it applies, and the DC level the norm
/// credits it with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagnosticTechnique {
    /// Catalog identifier.
    pub id: TechniqueId,
    /// Norm-style name.
    pub name: &'static str,
    /// The Annex A table the entry abridges.
    pub table: &'static str,
    /// Component class the technique applies to.
    pub applies_to: ComponentClass,
    /// Maximum diagnostic coverage considered achievable.
    pub max_dc: DcLevel,
    /// True when the technique is implemented in software (the worksheet
    /// tracks HW and SW DDF separately).
    pub software: bool,
}

impl fmt::Display for DiagnosticTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] on {}: max DC {}",
            self.name, self.table, self.applies_to, self.max_dc
        )
    }
}

/// The built-in technique catalog.
///
/// # Example
///
/// ```
/// use socfmea_iec61508::{technique_catalog, DcLevel, TechniqueId};
///
/// let ecc = technique_catalog()
///     .iter()
///     .find(|t| t.id == TechniqueId::RamEcc)
///     .unwrap();
/// assert_eq!(ecc.max_dc, DcLevel::High);
/// ```
pub fn technique_catalog() -> &'static [DiagnosticTechnique] {
    use ComponentClass::*;
    use DcLevel::*;
    use TechniqueId::*;
    &[
        DiagnosticTechnique {
            id: RamEcc,
            name: "RAM monitoring with modified Hamming code (SEC-DED ECC)",
            table: "A.6",
            applies_to: VariableMemory,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: DoubleRamCompare,
            name: "double RAM with hardware or software comparison",
            table: "A.6",
            applies_to: VariableMemory,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: WordParity,
            name: "word parity (one-bit redundancy)",
            table: "A.6",
            applies_to: VariableMemory,
            max_dc: Low,
            software: false,
        },
        DiagnosticTechnique {
            id: RamMarchTest,
            name: "RAM test march / galpat at start-up",
            table: "A.6",
            applies_to: VariableMemory,
            max_dc: High,
            software: true,
        },
        DiagnosticTechnique {
            id: Scrubbing,
            name: "memory scrubbing / background scanning (fault forecasting)",
            table: "A.6",
            applies_to: VariableMemory,
            max_dc: Medium,
            software: false,
        },
        DiagnosticTechnique {
            id: SwSelfTest,
            name: "self-test by software (walking bit / limited patterns)",
            table: "A.4",
            applies_to: ProcessingUnit,
            max_dc: Medium,
            software: true,
        },
        DiagnosticTechnique {
            id: RedundantComparator,
            name: "duplicated logic with hardware comparator",
            table: "A.3",
            applies_to: ProcessingUnit,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: SyndromeCheck,
            name: "coded processing with distributed syndrome checking",
            table: "A.4",
            applies_to: ProcessingUnit,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: AddressInCode,
            name: "address folded into the data code word",
            table: "A.5/A.6",
            applies_to: VariableMemory,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: BusFullRedundancy,
            name: "complete hardware redundancy of the bus",
            table: "A.7",
            applies_to: Bus,
            max_dc: High,
            software: false,
        },
        DiagnosticTechnique {
            id: BusParityCrc,
            name: "information redundancy on the bus (parity / CRC)",
            table: "A.7",
            applies_to: Bus,
            max_dc: Medium,
            software: false,
        },
        DiagnosticTechnique {
            id: BusTimeout,
            name: "time-out supervision of bus transfers",
            table: "A.7",
            applies_to: Bus,
            max_dc: Medium,
            software: false,
        },
        DiagnosticTechnique {
            id: MpuAccessCheck,
            name: "memory protection unit with paged access permissions",
            table: "A.9",
            applies_to: Bus,
            max_dc: Medium,
            software: false,
        },
        DiagnosticTechnique {
            id: WatchdogSeparateTimeBase,
            name: "watchdog with separate time base",
            table: "A.10",
            applies_to: Clock,
            max_dc: Medium,
            software: false,
        },
    ]
}

/// Looks up a catalog entry by id.
pub fn technique(id: TechniqueId) -> &'static DiagnosticTechnique {
    technique_catalog()
        .iter()
        .find(|t| t.id == id)
        .expect("catalog covers all TechniqueId variants")
}

/// All techniques applicable to a component class.
pub fn techniques_for(class: ComponentClass) -> Vec<&'static DiagnosticTechnique> {
    technique_catalog()
        .iter()
        .filter(|t| t.applies_to == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_is_total() {
        // every TechniqueId resolves
        for t in technique_catalog() {
            assert_eq!(technique(t.id).id, t.id);
        }
    }

    #[test]
    fn paper_highlighted_techniques_are_high_dc() {
        // "RAM monitoring with Hamming code or ECCs or double RAMs with
        //  hardware/software comparison are the ones with the highest value"
        assert_eq!(technique(TechniqueId::RamEcc).max_dc, DcLevel::High);
        assert_eq!(
            technique(TechniqueId::DoubleRamCompare).max_dc,
            DcLevel::High
        );
    }

    #[test]
    fn parity_is_low_coverage() {
        assert_eq!(technique(TechniqueId::WordParity).max_dc, DcLevel::Low);
    }

    #[test]
    fn class_filter_returns_applicable_entries() {
        let mem = techniques_for(ComponentClass::VariableMemory);
        assert!(mem.len() >= 4);
        assert!(mem
            .iter()
            .all(|t| t.applies_to == ComponentClass::VariableMemory));
    }

    #[test]
    fn software_flag_distinguishes_sw_techniques() {
        assert!(technique(TechniqueId::SwSelfTest).software);
        assert!(!technique(TechniqueId::RamEcc).software);
    }

    #[test]
    fn display_mentions_table() {
        let s = technique(TechniqueId::RamEcc).to_string();
        assert!(s.contains("A.6"));
    }
}
