//! Automatic extraction of sensible zones from a gate-level netlist.
//!
//! This is the open reimplementation of the paper's extraction tool ("the
//! extraction of sensible zones and observation points is automatically
//! performed by a tool ... working on the synthesized RTL. Besides to
//! collect and properly compact the registers, the tool extracts as well the
//! data needed by the FMEA statistical model, such the composition of the
//! logic cone in front of each sensible zone ... and the correlation between
//! each sensible zone in terms of shared gates and nets", §3).

use crate::zone::{SensibleZone, ZoneId, ZoneKind};
use socfmea_iec61508::ComponentClass;
use socfmea_netlist::{
    fanin_cone_multi, gate_membership, split_bit_suffix, Cone, CorrelationMatrix, DffId,
    GateMembership, NetId, Netlist,
};
use std::collections::BTreeMap;

/// Configuration of the zone extraction.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Compact flip-flops into architectural registers by
    /// `(block, base name)` (default `true`; when `false` every flip-flop
    /// becomes its own zone).
    pub group_registers: bool,
    /// Create zones for primary input buses.
    pub input_zones: bool,
    /// Create zones for primary output buses.
    pub output_zones: bool,
    /// Create zones for critical nets (clock/reset/long nets).
    pub critical_net_zones: bool,
    /// Block paths collapsed into a single [`ZoneKind::SubBlock`] zone each
    /// (matched by path prefix). Registers inside are not zoned
    /// individually.
    pub opaque_blocks: Vec<String>,
    /// Component-class assignment by block-path prefix; first match wins,
    /// later entries lose to earlier ones. Zones with no match default to
    /// [`ComponentClass::ProcessingUnit`].
    pub class_rules: Vec<(String, ComponentClass)>,
    /// User-defined *logical entity* zones — the paper's third zone kind:
    /// "logical entities that can or cannot directly map to a memory
    /// element. Example: wrong conditional field of a conditional
    /// instruction". Each entry is `(zone name, net names)`; net names that
    /// do not resolve are skipped.
    pub logical_entities: Vec<(String, Vec<String>)>,
}

impl Default for ExtractConfig {
    fn default() -> ExtractConfig {
        ExtractConfig {
            group_registers: true,
            input_zones: true,
            output_zones: true,
            critical_net_zones: true,
            opaque_blocks: Vec::new(),
            class_rules: Vec::new(),
            logical_entities: Vec::new(),
        }
    }
}

impl ExtractConfig {
    /// Adds a component-class rule for blocks whose path starts with
    /// `prefix`.
    pub fn classify(mut self, prefix: impl Into<String>, class: ComponentClass) -> Self {
        self.class_rules.push((prefix.into(), class));
        self
    }

    /// Marks a block path (prefix) as opaque: one sub-block zone instead of
    /// per-register zones.
    pub fn opaque(mut self, prefix: impl Into<String>) -> Self {
        self.opaque_blocks.push(prefix.into());
        self
    }

    /// Declares a logical-entity zone over the named nets.
    pub fn entity(mut self, name: impl Into<String>, nets: &[&str]) -> Self {
        self.logical_entities
            .push((name.into(), nets.iter().map(|s| (*s).to_owned()).collect()));
        self
    }

    fn class_of(&self, block: &str, fallback: ComponentClass) -> ComponentClass {
        for (prefix, class) in &self.class_rules {
            if block.starts_with(prefix.as_str()) {
                return *class;
            }
        }
        fallback
    }
}

/// The extracted zones plus the shared-cone correlation data.
#[derive(Debug, Clone)]
pub struct ZoneSet {
    zones: Vec<SensibleZone>,
    membership: GateMembership,
    correlation: CorrelationMatrix,
    /// For each flip-flop, the register zone containing it (if any).
    dff_zone: Vec<Option<ZoneId>>,
}

impl ZoneSet {
    /// All zones, indexable by [`ZoneId::index`].
    pub fn zones(&self) -> &[SensibleZone] {
        &self.zones
    }

    /// Borrow one zone.
    pub fn zone(&self, id: ZoneId) -> &SensibleZone {
        &self.zones[id.index()]
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when no zones were extracted.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Per-gate cone membership (how many zones each gate's faults can
    /// disturb).
    pub fn membership(&self) -> &GateMembership {
        &self.membership
    }

    /// Pairwise shared-gate correlation between zones.
    pub fn correlation(&self) -> &CorrelationMatrix {
        &self.correlation
    }

    /// The zone containing a flip-flop, if it belongs to one.
    pub fn zone_of_dff(&self, dff: DffId) -> Option<ZoneId> {
        self.dff_zone[dff.index()]
    }

    /// Looks a zone up by exact name.
    pub fn zone_by_name(&self, name: &str) -> Option<&SensibleZone> {
        self.zones.iter().find(|z| z.name == name)
    }

    /// Iterates over zones of one kind tag (`"reg"`, `"pi"`, ...).
    pub fn zones_tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a SensibleZone> {
        self.zones.iter().filter(move |z| z.kind.tag() == tag)
    }
}

/// Extracts sensible zones from a netlist.
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_rtl::RtlBuilder;
///
/// let mut r = RtlBuilder::new("demo");
/// let d = r.input_word("d", 8);
/// let q = r.register("state", &d, None, None);
/// r.output_word("q", &q);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// // one register zone (8 bits compacted), one input bus, one output bus
/// assert_eq!(zones.zones_tagged("reg").count(), 1);
/// assert_eq!(zones.zones_tagged("pi").count(), 1);
/// assert_eq!(zones.zones_tagged("po").count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract_zones(netlist: &Netlist, config: &ExtractConfig) -> ZoneSet {
    let mut zones: Vec<SensibleZone> = Vec::new();
    let mut dff_zone: Vec<Option<ZoneId>> = vec![None; netlist.dff_count()];
    let is_opaque = |block: &str| {
        config
            .opaque_blocks
            .iter()
            .any(|p| block.starts_with(p.as_str()))
    };

    // --- sub-block zones (opaque blocks) -----------------------------
    // Group gates and dffs by the opaque prefix that matched.
    let mut opaque_groups: BTreeMap<String, (Vec<socfmea_netlist::GateId>, Vec<DffId>)> =
        BTreeMap::new();
    for (gi, g) in netlist.gates().iter().enumerate() {
        let block = netlist.block_path(g.block);
        if let Some(prefix) = config
            .opaque_blocks
            .iter()
            .find(|p| block.starts_with(p.as_str()))
        {
            opaque_groups
                .entry(prefix.clone())
                .or_default()
                .0
                .push(socfmea_netlist::GateId::from_index(gi));
        }
    }
    for (fi, ff) in netlist.dffs().iter().enumerate() {
        let block = netlist.block_path(ff.block);
        if let Some(prefix) = config
            .opaque_blocks
            .iter()
            .find(|p| block.starts_with(p.as_str()))
        {
            opaque_groups
                .entry(prefix.clone())
                .or_default()
                .1
                .push(DffId::from_index(fi));
        }
    }

    // --- register-group zones ----------------------------------------
    // Key: (block path, base name) -> dffs ordered by bit index.
    let mut groups: BTreeMap<(String, String), Vec<(u32, DffId)>> = BTreeMap::new();
    for (fi, ff) in netlist.dffs().iter().enumerate() {
        let block = netlist.block_path(ff.block).to_owned();
        if is_opaque(&block) {
            continue;
        }
        let (base, bit) = split_bit_suffix(&ff.name);
        let key = if config.group_registers {
            (block, base.to_owned())
        } else {
            (block, ff.name.clone())
        };
        groups
            .entry(key)
            .or_default()
            .push((bit.unwrap_or(0), DffId::from_index(fi)));
    }
    for ((block, base), mut members) in groups {
        members.sort_unstable();
        let dffs: Vec<DffId> = members.into_iter().map(|(_, f)| f).collect();
        let anchors: Vec<NetId> = dffs.iter().map(|&f| netlist.dff(f).q).collect();
        // The converging cone of a register is the logic in front of its D
        // (and control) pins.
        let d_nets: Vec<NetId> = dffs
            .iter()
            .flat_map(|&f| {
                let ff = netlist.dff(f);
                let mut v = vec![ff.d];
                v.extend(ff.enable);
                v.extend(ff.reset);
                v
            })
            .collect();
        let cone = fanin_cone_multi(netlist, &d_nets);
        let stats = cone.stats(netlist);
        let id = ZoneId::from_index(zones.len());
        for &f in &dffs {
            dff_zone[f.index()] = Some(id);
        }
        let name = if block.is_empty() {
            base.clone()
        } else {
            format!("{block}/{base}")
        };
        zones.push(SensibleZone {
            id,
            name,
            kind: ZoneKind::RegisterGroup { dffs },
            block: block.clone(),
            anchors,
            cone,
            stats,
            effective_gate_count: 0.0,
            class: config.class_of(&block, ComponentClass::ProcessingUnit),
        });
    }

    // materialise opaque sub-block zones
    for (prefix, (gates, dffs)) in opaque_groups {
        let anchors: Vec<NetId> = dffs.iter().map(|&f| netlist.dff(f).q).collect();
        let gate_set: std::collections::BTreeSet<_> = gates.iter().copied().collect();
        let cone = Cone {
            anchor: anchors.first().copied(),
            gates: gate_set.into_iter().collect(),
            leaves: Vec::new(),
        };
        let stats = cone.stats(netlist);
        let id = ZoneId::from_index(zones.len());
        for &f in &dffs {
            dff_zone[f.index()] = Some(id);
        }
        zones.push(SensibleZone {
            id,
            name: format!("{prefix} (block)"),
            kind: ZoneKind::SubBlock { gates, dffs },
            block: prefix.clone(),
            anchors,
            cone,
            stats,
            effective_gate_count: 0.0,
            class: config.class_of(&prefix, ComponentClass::ProcessingUnit),
        });
    }

    // --- primary I/O zones --------------------------------------------
    if config.input_zones {
        for (base, nets) in group_ports(netlist, netlist.inputs()) {
            // Skip nets already zoned as critical (clock/reset get their own
            // zone below).
            let critical: Vec<NetId> = netlist.critical_nets().iter().map(|&(n, _)| n).collect();
            let nets: Vec<NetId> = nets.into_iter().filter(|n| !critical.contains(n)).collect();
            if nets.is_empty() {
                continue;
            }
            let id = ZoneId::from_index(zones.len());
            zones.push(SensibleZone {
                id,
                name: format!("pi/{base}"),
                kind: ZoneKind::PrimaryInputGroup { nets: nets.clone() },
                block: String::new(),
                anchors: nets,
                cone: Cone::default(),
                stats: Default::default(),
                effective_gate_count: 0.0,
                class: config.class_of(&format!("pi/{base}"), ComponentClass::InputOutput),
            });
        }
    }
    if config.output_zones {
        for (base, nets) in group_ports(netlist, netlist.outputs()) {
            let cone = fanin_cone_multi(netlist, &nets);
            let stats = cone.stats(netlist);
            let id = ZoneId::from_index(zones.len());
            zones.push(SensibleZone {
                id,
                name: format!("po/{base}"),
                kind: ZoneKind::PrimaryOutputGroup { nets: nets.clone() },
                block: String::new(),
                anchors: nets,
                cone,
                stats,
                effective_gate_count: 0.0,
                class: config.class_of(&format!("po/{base}"), ComponentClass::InputOutput),
            });
        }
    }

    // --- logical-entity zones --------------------------------------------
    for (name, net_names) in &config.logical_entities {
        let nets: Vec<NetId> = net_names
            .iter()
            .filter_map(|n| netlist.net_by_name(n))
            .collect();
        if nets.is_empty() {
            continue;
        }
        let cone = fanin_cone_multi(netlist, &nets);
        let stats = cone.stats(netlist);
        let id = ZoneId::from_index(zones.len());
        zones.push(SensibleZone {
            id,
            name: format!("entity/{name}"),
            kind: ZoneKind::LogicalEntity { nets: nets.clone() },
            block: String::new(),
            anchors: nets,
            cone,
            stats,
            effective_gate_count: 0.0,
            class: config.class_of(&format!("entity/{name}"), ComponentClass::ProcessingUnit),
        });
    }

    // --- critical-net zones --------------------------------------------
    if config.critical_net_zones {
        for &(net, role) in netlist.critical_nets() {
            let id = ZoneId::from_index(zones.len());
            zones.push(SensibleZone {
                id,
                name: format!("critnet/{}", netlist.net(net).name),
                kind: ZoneKind::CriticalNet { net, role },
                block: String::new(),
                anchors: vec![net],
                cone: Cone::default(),
                stats: Default::default(),
                effective_gate_count: 0.0,
                class: ComponentClass::Clock,
            });
        }
    }

    // --- correlation ----------------------------------------------------
    let cones: Vec<Cone> = zones.iter().map(|z| z.cone.clone()).collect();
    let membership = gate_membership(netlist, &cones);
    let correlation = CorrelationMatrix::from_membership(&membership, cones.len());
    // Apportion shared (wide) gates across the cones containing them so the
    // per-zone gate failure rates sum to the real total.
    for z in &mut zones {
        z.effective_gate_count = z
            .cone
            .gates
            .iter()
            .map(|g| 1.0 / membership.cone_indices[g.index()].len() as f64)
            .sum::<f64>()
            .max(0.0);
    }

    ZoneSet {
        zones,
        membership,
        correlation,
        dff_zone,
    }
}

/// [`extract_zones`] timed as the pipeline's `extract-zones` phase, with
/// the extraction's headline numbers (zone, gate, and flip-flop counts)
/// recorded into the observer's metrics registry. The returned zone set is
/// identical to the unobserved call.
pub fn extract_zones_observed(
    netlist: &Netlist,
    config: &ExtractConfig,
    obs: &socfmea_obs::Observer,
) -> ZoneSet {
    let zones = obs.phase("extract-zones", || extract_zones(netlist, config));
    let reg = obs.registry();
    reg.gauge("extract.zones").set(zones.len() as f64);
    reg.gauge("extract.gates").set(netlist.gate_count() as f64);
    reg.gauge("extract.dffs").set(netlist.dff_count() as f64);
    zones
}

/// Groups port nets by bus base name, preserving bit order.
fn group_ports(netlist: &Netlist, ports: &[NetId]) -> Vec<(String, Vec<NetId>)> {
    let mut map: BTreeMap<String, Vec<(u32, NetId)>> = BTreeMap::new();
    for &n in ports {
        let (base, bit) = split_bit_suffix(&netlist.net(n).name);
        map.entry(base.to_owned())
            .or_default()
            .push((bit.unwrap_or(0), n));
    }
    map.into_iter()
        .map(|(base, mut v)| {
            v.sort_unstable();
            (base, v.into_iter().map(|(_, n)| n).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_rtl::RtlBuilder;

    fn demo_netlist() -> socfmea_netlist::Netlist {
        // Two register stages in different blocks sharing a source bus, with
        // a clock and reset.
        let mut r = RtlBuilder::new("demo");
        let _clk = r.clock_input("clk");
        let rst = r.reset_input("rst");
        let d = r.input_word("din", 4);
        r.push_block("u_front");
        let inv = r.not(&d);
        let a = r.register("a_reg", &inv, None, Some(rst));
        r.pop_block();
        r.push_block("u_back");
        let mixed = r.xor(&a, &d);
        let b = r.register("b_reg", &mixed, None, Some(rst));
        r.pop_block();
        r.output_word("dout", &b);
        r.finish().unwrap()
    }

    #[test]
    fn registers_are_compacted_by_base_name() {
        let nl = demo_netlist();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let regs: Vec<_> = zones.zones_tagged("reg").collect();
        assert_eq!(regs.len(), 2);
        let a = zones.zone_by_name("u_front/a_reg").expect("a_reg zone");
        assert_eq!(a.storage_bits(), 4);
        assert!(a.stats.gate_count >= 4); // the inverters
    }

    #[test]
    fn ungrouped_extraction_gives_per_bit_zones() {
        let nl = demo_netlist();
        let cfg = ExtractConfig {
            group_registers: false,
            ..ExtractConfig::default()
        };
        let zones = extract_zones(&nl, &cfg);
        assert_eq!(zones.zones_tagged("reg").count(), 8);
    }

    #[test]
    fn io_and_critical_zones_present() {
        let nl = demo_netlist();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        assert_eq!(zones.zones_tagged("pi").count(), 1); // din (clk/rst are critical)
        assert_eq!(zones.zones_tagged("po").count(), 1); // dout
        assert_eq!(zones.zones_tagged("critnet").count(), 2); // clk, rst
    }

    #[test]
    fn dff_zone_mapping_is_consistent() {
        let nl = demo_netlist();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        for (zi, z) in zones.zones().iter().enumerate() {
            if let ZoneKind::RegisterGroup { dffs } = &z.kind {
                for &f in dffs {
                    assert_eq!(zones.zone_of_dff(f), Some(ZoneId::from_index(zi)));
                }
            }
        }
    }

    #[test]
    fn class_rules_apply_by_prefix() {
        let nl = demo_netlist();
        let cfg = ExtractConfig::default()
            .classify("u_front", ComponentClass::VariableMemory)
            .classify("u_back", ComponentClass::Bus);
        let zones = extract_zones(&nl, &cfg);
        assert_eq!(
            zones.zone_by_name("u_front/a_reg").unwrap().class,
            ComponentClass::VariableMemory
        );
        assert_eq!(
            zones.zone_by_name("u_back/b_reg").unwrap().class,
            ComponentClass::Bus
        );
    }

    #[test]
    fn logical_entity_zones_cover_named_nets() {
        let nl = demo_netlist();
        // an entity over two register bits plus one unresolvable name
        let cfg = ExtractConfig::default()
            .entity("front_low_bits", &["a_reg[0]", "ghost_net", "a_reg[1]"]);
        let zones = extract_zones(&nl, &cfg);
        let entity = zones
            .zone_by_name("entity/front_low_bits")
            .expect("entity extracted");
        assert_eq!(entity.kind.tag(), "entity");
        assert_eq!(entity.anchors.len(), 2, "unresolved names are skipped");
        // a fully unresolvable entity is skipped entirely
        let cfg = ExtractConfig::default().entity("nothing", &["does_not_exist"]);
        let zones = extract_zones(&nl, &cfg);
        assert_eq!(zones.zones_tagged("entity").count(), 0);
    }

    #[test]
    fn opaque_blocks_collapse_to_one_zone() {
        let nl = demo_netlist();
        let cfg = ExtractConfig::default().opaque("u_back");
        let zones = extract_zones(&nl, &cfg);
        assert_eq!(zones.zones_tagged("reg").count(), 1); // only a_reg
        let blocks: Vec<_> = zones.zones_tagged("block").collect();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].storage_bits(), 4); // b_reg inside
    }

    #[test]
    fn shared_inputs_create_wide_gates() {
        // `din` feeds both register cones through shared inverters? The
        // inverters feed only a_reg; the xor feeds only b_reg — but a_reg's
        // q nets are leaves of b_reg's cone, so no gate sharing here.
        // Construct explicit sharing instead:
        let mut r = RtlBuilder::new("wide");
        let d = r.input_word("din", 2);
        let shared = r.not(&d);
        let a = r.register("a", &shared, None, None);
        let b = r.register("b", &shared, None, None);
        r.output_word("qa", &a);
        r.output_word("qb", &b);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let (_, _, wide) = zones.membership().census();
        assert_eq!(wide, 2); // two shared inverters
        let za = zones.zone_by_name("a").unwrap().id;
        let zb = zones.zone_by_name("b").unwrap().id;
        assert_eq!(zones.correlation().shared_gates(za.index(), zb.index()), 2);
    }

    #[test]
    fn empty_netlist_extracts_no_zones() {
        let nl = RtlBuilder::new("void").finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        assert!(zones.is_empty());
        assert_eq!(zones.len(), 0);
        assert_eq!(zones.membership().census(), (0, 0, 0));
        assert!(zones.correlation().correlated_pairs().is_empty());
        assert_eq!(zones.correlation().cone_count(), 0);
    }

    #[test]
    fn gate_shared_by_three_cones_is_wide_in_all_of_them() {
        // one inverter fans out to three registers: its gate sits in three
        // cones and must appear in the membership of each, counted once in
        // the wide census and 1/3 in each effective gate count
        let mut r = RtlBuilder::new("tri");
        let d = r.input_word("din", 1);
        let shared = r.not(&d);
        let a = r.register("a", &shared, None, None);
        let b = r.register("b", &shared, None, None);
        let c = r.register("c", &shared, None, None);
        r.output_word("qa", &a);
        r.output_word("qb", &b);
        r.output_word("qc", &c);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let shared_gate = nl
            .gates()
            .iter()
            .position(|g| g.name.contains("not"))
            .expect("the shared inverter");
        let cones = &zones.membership().cone_indices[shared_gate];
        assert!(
            cones.len() >= 3,
            "expected >= 3 cones sharing the inverter, got {cones:?}"
        );
        let (_, _, wide) = zones.membership().census();
        assert_eq!(wide, 1);
        // all three register pairs are correlated through the single gate
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "c")] {
            let zx = zones.zone_by_name(x).unwrap().id.index();
            let zy = zones.zone_by_name(y).unwrap().id.index();
            assert_eq!(zones.correlation().shared_gates(zx, zy), 1, "{x}/{y}");
        }
        // apportioning: each register zone credits 1/3 of the shared gate
        let za = zones.zone_by_name("a").unwrap();
        assert!((za.effective_gate_count - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn primary_input_fed_register_has_zero_gate_cone() {
        // a register latching an input directly: the converging cone exists
        // (anchored at the D net) but contains zero gates
        let mut r = RtlBuilder::new("thin");
        let d = r.input_word("din", 2);
        let q = r.register("latch", &d, None, None);
        r.output_word("dout", &q);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let latch = zones.zone_by_name("latch").expect("latch zone");
        assert!(latch.cone.gates.is_empty());
        assert_eq!(latch.stats.gate_count, 0);
        assert_eq!(latch.effective_gate_count, 0.0);
        assert_eq!(latch.storage_bits(), 2);
        // the only gates are the two output-port buffers, local to the
        // primary-output zone's cone; nothing is wide or unassigned
        assert_eq!(zones.membership().census(), (0, 2, 0));
    }

    #[test]
    fn observed_extraction_is_identical_and_records_metrics() {
        let nl = demo_netlist();
        let plain = extract_zones(&nl, &ExtractConfig::default());
        let obs = socfmea_obs::Observer::new();
        let observed = extract_zones_observed(&nl, &ExtractConfig::default(), &obs);
        assert_eq!(plain.len(), observed.len());
        for (a, b) in plain.zones().iter().zip(observed.zones()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.anchors, b.anchors);
            assert_eq!(a.cone.gates, b.cone.gates);
        }
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.gauges["extract.zones"], plain.len() as f64);
        assert_eq!(snap.gauges["extract.dffs"], nl.dff_count() as f64);
        assert!(snap.gauges.contains_key("phase.extract-zones.nanos"));
    }
}
