//! SoC-level FMEA engine — the paper's primary contribution.
//!
//! This crate implements the methodology of *"Using an innovative SoC-level
//! FMEA methodology to design in compliance with IEC61508"* (Mariani,
//! Boschi, Colucci — DATE 2007):
//!
//! 1. [`extract`] — decompose a gate-level netlist into **sensible zones**
//!    (registers compacted by architectural name, primary I/Os, critical
//!    nets, opaque sub-blocks) with per-zone logic-cone statistics and
//!    shared-gate correlation,
//! 2. [`faultclass`] — classify physical fault sites as **local / wide /
//!    global**,
//! 3. [`effects`] — predict each zone's **main and secondary effects** at
//!    the observation points,
//! 4. [`worksheet`] — the FMEA spreadsheet: FIT model × S/D/F/ζ factors ×
//!    DDF claims (capped by IEC 61508 Annex A) → λ_S/λ_DD/λ_DU, **DC**,
//!    **SFF**, SIL grant and criticality ranking,
//! 5. [`sensitivity`] — span the assumptions and measure SFF stability,
//! 6. [`validate`](mod@crate::validate) — cross-check the estimates against fault-injection
//!    measurements (produced by `socfmea-faultsim`),
//! 7. [`report`] — text/CSV spreadsheet rendering.
//!
//! # Example: end-to-end on a toy design
//!
//! ```
//! use socfmea_core::extract::{extract_zones, ExtractConfig};
//! use socfmea_core::worksheet::{DiagnosticClaim, Worksheet};
//! use socfmea_iec61508::TechniqueId;
//! use socfmea_rtl::RtlBuilder;
//!
//! // A registered datapath...
//! let mut r = RtlBuilder::new("soc");
//! let d = r.input_word("din", 8);
//! let q = r.register("state", &d, None, None);
//! r.output_word("dout", &q);
//! let netlist = r.finish()?;
//!
//! // ...zoned, protected with ECC, and assessed:
//! let zones = extract_zones(&netlist, &ExtractConfig::default());
//! let mut ws = Worksheet::new(&zones);
//! let state = zones.zone_by_name("state").unwrap().id;
//! ws.add_diagnostic(state, DiagnosticClaim::at_max(TechniqueId::RamEcc));
//! let fmea = ws.compute();
//! println!("SFF = {:.2}%", fmea.sff().unwrap() * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod effects;
pub mod extract;
pub mod faultclass;
pub mod fit_model;
pub mod report;
pub mod sensitivity;
pub mod validate;
pub mod worksheet;
pub mod zone;

pub use effects::{predict_all_effects, predict_effects, ZoneEffects, ZoneGraph};
pub use extract::{extract_zones, extract_zones_observed, ExtractConfig, ZoneSet};
pub use faultclass::{census, classify_gate, wide_fault_sites, FaultClass, FaultClassCensus};
pub use fit_model::FitModel;
pub use sensitivity::{sweep, SensitivityReport, SensitivitySpec};
pub use validate::{
    validate, CampaignStatsSummary, MeasuredZone, ValidationConfig, ValidationReport,
};
pub use worksheet::{
    DiagnosticClaim, FmeaResult, FreqClass, RowPersistence, Worksheet, WorksheetRow,
    ZoneAssumptions,
};
pub use zone::{SensibleZone, ZoneId, ZoneKind};
