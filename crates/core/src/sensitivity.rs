//! Sensitivity analysis: spanning the worksheet assumptions.
//!
//! "An important step of the FMEA is to span the values of the assumptions
//! (such the elementary failure rates for transient and permanent faults or
//! the user assumptions such S, D and F) in order to measure the sensitivity
//! of the final DC/SFF to these changes" (paper §4). The hardened memory
//! sub-system of §6 was accepted partly because its SFF "was very stable as
//! well, i.e. changes on S,D,F and fault models didn't change the result in
//! a sensible way".

use crate::worksheet::Worksheet;

/// The grid of assumption perturbations to sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivitySpec {
    /// Multipliers applied to all transient FIT rates.
    pub transient_fit_multipliers: Vec<f64>,
    /// Multipliers applied to all permanent FIT rates.
    pub permanent_fit_multipliers: Vec<f64>,
    /// Derating factors applied to every claimed DDF.
    pub ddf_deratings: Vec<f64>,
    /// Shifts (in classes) applied to every zone's frequency class F.
    pub freq_shifts: Vec<i8>,
    /// Deltas added to every zone's architectural safe fraction S.
    pub s_deltas: Vec<f64>,
}

impl Default for SensitivitySpec {
    fn default() -> SensitivitySpec {
        SensitivitySpec {
            transient_fit_multipliers: vec![0.5, 1.0, 2.0],
            permanent_fit_multipliers: vec![0.5, 1.0, 2.0],
            ddf_deratings: vec![0.98, 1.0],
            freq_shifts: vec![-1, 0, 1],
            s_deltas: vec![-0.1, 0.0, 0.1],
        }
    }
}

impl SensitivitySpec {
    /// Number of grid points the spec will evaluate.
    pub fn grid_size(&self) -> usize {
        self.transient_fit_multipliers.len()
            * self.permanent_fit_multipliers.len()
            * self.ddf_deratings.len()
            * self.freq_shifts.len()
            * self.s_deltas.len()
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivitySample {
    /// Transient FIT multiplier.
    pub transient_mult: f64,
    /// Permanent FIT multiplier.
    pub permanent_mult: f64,
    /// DDF derating.
    pub ddf_derating: f64,
    /// Frequency-class shift.
    pub freq_shift: i8,
    /// Architectural-S delta.
    pub s_delta: f64,
    /// Resulting SoC SFF (`None` for a degenerate all-zero model).
    pub sff: Option<f64>,
}

/// The result of a sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// The baseline (unperturbed) SFF.
    pub base_sff: Option<f64>,
    /// All evaluated samples.
    pub samples: Vec<SensitivitySample>,
}

impl SensitivityReport {
    /// Smallest SFF over the grid.
    pub fn min_sff(&self) -> Option<f64> {
        self.samples
            .iter()
            .filter_map(|s| s.sff)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Largest SFF over the grid.
    pub fn max_sff(&self) -> Option<f64> {
        self.samples
            .iter()
            .filter_map(|s| s.sff)
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Mean SFF over the grid.
    pub fn mean_sff(&self) -> Option<f64> {
        let v: Vec<f64> = self.samples.iter().filter_map(|s| s.sff).collect();
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }

    /// The full SFF excursion (max − min) over the grid.
    pub fn excursion(&self) -> Option<f64> {
        Some(self.max_sff()? - self.min_sff()?)
    }

    /// The paper's stability criterion: the result is *stable* when no
    /// perturbation moves the SFF by more than `tolerance` (absolute).
    pub fn is_stable(&self, tolerance: f64) -> bool {
        match self.excursion() {
            Some(e) => e <= tolerance,
            None => false,
        }
    }

    /// The grid point with the worst (lowest) SFF.
    pub fn worst_case(&self) -> Option<&SensitivitySample> {
        self.samples
            .iter()
            .filter(|s| s.sff.is_some())
            .min_by(|a, b| a.sff.partial_cmp(&b.sff).expect("finite"))
    }
}

/// Sweeps the worksheet over the perturbation grid.
///
/// The worksheet itself is not modified; each grid point is evaluated on a
/// perturbed clone.
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_core::sensitivity::{sweep, SensitivitySpec};
/// use socfmea_core::worksheet::Worksheet;
/// use socfmea_rtl::RtlBuilder;
///
/// let mut r = RtlBuilder::new("d");
/// let d = r.input_word("d", 4);
/// let q = r.register("q", &d, None, None);
/// r.output_word("o", &q);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let ws = Worksheet::new(&zones);
/// let report = sweep(&ws, &SensitivitySpec::default());
/// assert_eq!(report.samples.len(), SensitivitySpec::default().grid_size());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sweep(worksheet: &Worksheet<'_>, spec: &SensitivitySpec) -> SensitivityReport {
    let base_sff = worksheet.compute().sff();
    let mut samples = Vec::with_capacity(spec.grid_size());
    for &tm in &spec.transient_fit_multipliers {
        for &pm in &spec.permanent_fit_multipliers {
            for &dd in &spec.ddf_deratings {
                for &fs in &spec.freq_shifts {
                    for &sd in &spec.s_deltas {
                        let mut ws = worksheet.clone();
                        ws.set_fit_model(
                            worksheet
                                .fit_model()
                                .scale_transient(tm)
                                .scale_permanent(pm),
                        );
                        ws.set_ddf_derating(dd);
                        ws.assume_all(|_z, a| {
                            a.freq = a.freq.shifted(fs);
                            a.s_architectural = (a.s_architectural + sd).clamp(0.0, 1.0);
                        });
                        samples.push(SensitivitySample {
                            transient_mult: tm,
                            permanent_mult: pm,
                            ddf_derating: dd,
                            freq_shift: fs,
                            s_delta: sd,
                            sff: ws.compute().sff(),
                        });
                    }
                }
            }
        }
    }
    SensitivityReport { base_sff, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use crate::worksheet::{DiagnosticClaim, Worksheet};
    use socfmea_iec61508::TechniqueId;
    use socfmea_rtl::RtlBuilder;

    fn zones() -> crate::extract::ZoneSet {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 8);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        extract_zones(&nl, &ExtractConfig::default())
    }

    #[test]
    fn grid_is_fully_evaluated() {
        let zones = zones();
        let ws = Worksheet::new(&zones);
        let spec = SensitivitySpec::default();
        let report = sweep(&ws, &spec);
        assert_eq!(report.samples.len(), spec.grid_size());
        assert!(report.base_sff.is_some());
        assert!(report.min_sff() <= report.base_sff);
        assert!(report.max_sff() >= report.base_sff);
        assert!(report.mean_sff().is_some());
    }

    #[test]
    fn well_covered_design_is_more_stable_than_uncovered() {
        let zones = zones();
        let mut covered = Worksheet::new(&zones);
        covered.assume_all(|_z, a| {
            a.diagnostics
                .push(DiagnosticClaim::at_max(TechniqueId::RamEcc));
            a.diagnostics
                .push(DiagnosticClaim::at_max(TechniqueId::RedundantComparator));
        });
        let uncovered = Worksheet::new(&zones);
        let spec = SensitivitySpec::default();
        let rc = sweep(&covered, &spec);
        let ru = sweep(&uncovered, &spec);
        assert!(rc.excursion().unwrap() < ru.excursion().unwrap());
        assert!(rc.is_stable(0.05));
    }

    #[test]
    fn worst_case_is_min() {
        let zones = zones();
        let ws = Worksheet::new(&zones);
        let report = sweep(&ws, &SensitivitySpec::default());
        assert_eq!(report.worst_case().unwrap().sff, report.min_sff());
    }

    #[test]
    fn empty_report_is_not_stable() {
        let report = SensitivityReport {
            base_sff: None,
            samples: Vec::new(),
        };
        assert!(!report.is_stable(1.0));
    }
}
