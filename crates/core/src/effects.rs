//! Main and secondary effects: where a zone failure shows up.
//!
//! "We define the main effect as the effect that at least will occur as
//! result of failure mode of the considered sensible zone respect an
//! observation point, if not masked internally. The secondary effects are the
//! other effects occurring at other observation points resulting from the
//! migration of the sensible zone failure through its output logic cone and
//! from there to other sensible zones till the other observation points"
//! (paper §3, Figure 3).
//!
//! Structurally, a zone's *main* effects are the observation points it feeds
//! directly (one sequential step away in the zone graph); *secondary* effects
//! are the observation points the failure can migrate to through further
//! zones.

use crate::extract::ZoneSet;
use crate::zone::{ZoneId, ZoneKind};
use socfmea_netlist::{CriticalNetKind, NetId, Netlist};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Zone-to-zone structural influence graph: an edge `A -> B` means a failure
/// in `A` can enter `B`'s converging cone.
#[derive(Debug, Clone)]
pub struct ZoneGraph {
    successors: Vec<Vec<ZoneId>>,
}

impl ZoneGraph {
    /// Builds the influence graph from the zones' cone leaves.
    ///
    /// Clock-type critical-net zones get edges to every sequential zone
    /// (they are *global* fault sites).
    pub fn build(netlist: &Netlist, zones: &ZoneSet) -> ZoneGraph {
        // anchor net -> owning zone
        let mut owner: BTreeMap<NetId, ZoneId> = BTreeMap::new();
        for z in zones.zones() {
            for &a in &z.anchors {
                owner.entry(a).or_insert(z.id);
            }
        }
        let mut successors: Vec<BTreeSet<ZoneId>> = vec![BTreeSet::new(); zones.len()];
        for z in zones.zones() {
            for &leaf in &z.cone.leaves {
                if let Some(&src) = owner.get(&leaf) {
                    if src != z.id {
                        successors[src.index()].insert(z.id);
                    }
                }
            }
        }
        // Global clock zones reach every sequential zone.
        for z in zones.zones() {
            if let ZoneKind::CriticalNet {
                role: CriticalNetKind::Clock,
                ..
            } = z.kind
            {
                for t in zones.zones() {
                    if t.is_sequential() {
                        successors[z.id.index()].insert(t.id);
                    }
                }
            }
        }
        let _ = netlist;
        ZoneGraph {
            successors: successors
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Direct successors of a zone.
    pub fn successors(&self, zone: ZoneId) -> &[ZoneId] {
        &self.successors[zone.index()]
    }

    /// Number of zones in the graph.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// True when the graph has no zones.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }
}

/// Predicted effects of a zone's failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneEffects {
    /// The failing zone.
    pub zone: ZoneId,
    /// Observation points one step away — "the effect that at least will
    /// occur ... if not masked internally".
    pub main: Vec<ZoneId>,
    /// Observation points further away, reached by migration through other
    /// zones.
    pub secondary: Vec<ZoneId>,
}

impl ZoneEffects {
    /// All predicted observation points (main then secondary).
    pub fn all(&self) -> impl Iterator<Item = ZoneId> + '_ {
        self.main.iter().chain(&self.secondary).copied()
    }
}

/// Computes the main/secondary effect prediction for one zone via BFS over
/// the zone graph.
///
/// # Example
///
/// ```
/// use socfmea_core::effects::{predict_effects, ZoneGraph};
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_rtl::RtlBuilder;
///
/// // chain: din -> a_reg -> b_reg -> dout
/// let mut r = RtlBuilder::new("chain");
/// let d = r.input_word("din", 2);
/// let a = r.register("a", &d, None, None);
/// let b = r.register("b", &a, None, None);
/// r.output_word("dout", &b);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let graph = ZoneGraph::build(&nl, &zones);
/// let a_id = zones.zone_by_name("a").unwrap().id;
/// let fx = predict_effects(&graph, a_id);
/// // main effect: b; secondary: the primary output bus zone
/// assert_eq!(fx.main.len(), 1);
/// assert_eq!(fx.secondary.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn predict_effects(graph: &ZoneGraph, zone: ZoneId) -> ZoneEffects {
    let mut dist: BTreeMap<ZoneId, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back((zone, 0usize));
    while let Some((z, d)) = queue.pop_front() {
        for &s in graph.successors(z) {
            if s != zone && !dist.contains_key(&s) {
                dist.insert(s, d + 1);
                queue.push_back((s, d + 1));
            }
        }
    }
    let mut main = Vec::new();
    let mut secondary = Vec::new();
    for (z, d) in dist {
        if d == 1 {
            main.push(z);
        } else {
            secondary.push(z);
        }
    }
    ZoneEffects {
        zone,
        main,
        secondary,
    }
}

/// Computes the effect prediction for every zone.
pub fn predict_all_effects(graph: &ZoneGraph) -> Vec<ZoneEffects> {
    (0..graph.len())
        .map(|i| predict_effects(graph, ZoneId::from_index(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;

    fn chain3() -> (socfmea_netlist::Netlist, ZoneSet) {
        let mut r = RtlBuilder::new("chain3");
        let _clk = r.clock_input("clk");
        let d = r.input_word("din", 2);
        let a = r.register("a", &d, None, None);
        let b = r.register("b", &a, None, None);
        let c = r.register("c", &b, None, None);
        r.output_word("dout", &c);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        (nl, zones)
    }

    #[test]
    fn effects_follow_the_pipeline() {
        let (nl, zones) = chain3();
        let graph = ZoneGraph::build(&nl, &zones);
        let a = zones.zone_by_name("a").unwrap().id;
        let fx = predict_effects(&graph, a);
        let names = |ids: &[ZoneId]| -> Vec<String> {
            ids.iter().map(|&z| zones.zone(z).name.clone()).collect()
        };
        assert_eq!(names(&fx.main), vec!["b"]);
        assert_eq!(names(&fx.secondary), vec!["c", "po/dout"]);
    }

    #[test]
    fn input_zone_feeds_first_register() {
        let (nl, zones) = chain3();
        let graph = ZoneGraph::build(&nl, &zones);
        let pi = zones.zone_by_name("pi/din").unwrap().id;
        let fx = predict_effects(&graph, pi);
        assert!(fx.main.iter().any(|&z| zones.zone(z).name == "a"));
    }

    #[test]
    fn clock_zone_reaches_all_sequential_zones_directly() {
        let (nl, zones) = chain3();
        let graph = ZoneGraph::build(&nl, &zones);
        let clk = zones.zone_by_name("critnet/clk").unwrap().id;
        let fx = predict_effects(&graph, clk);
        assert_eq!(fx.main.len(), 3); // a, b, c — a global fault site
    }

    #[test]
    fn terminal_zone_has_no_effects() {
        let (nl, zones) = chain3();
        let graph = ZoneGraph::build(&nl, &zones);
        let po = zones.zone_by_name("po/dout").unwrap().id;
        let fx = predict_effects(&graph, po);
        assert!(fx.main.is_empty() && fx.secondary.is_empty());
    }

    #[test]
    fn predict_all_covers_every_zone() {
        let (nl, zones) = chain3();
        let graph = ZoneGraph::build(&nl, &zones);
        let all = predict_all_effects(&graph);
        assert_eq!(all.len(), zones.len());
        assert!(!graph.is_empty());
    }
}
