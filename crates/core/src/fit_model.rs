//! The elementary failure-rate (FIT) model.
//!
//! "Starting from the elementary failure in time (FIT) per gate and per
//! register both for transient and permanent faults, all the data
//! automatically extracted by the tool are used to compute the failure rates
//! for each sensible zone" (paper §3).
//!
//! Absolute FIT values are technology data the paper does not publish; the
//! defaults below are representative of a 90 nm-era automotive process
//! (soft-error dominated flip-flops) and are *configurable* — the SFF/DC
//! results are ratios, so the baseline-vs-hardened comparison is insensitive
//! to the absolute scale (verified by the sensitivity analysis, experiment
//! T4).

use crate::zone::{SensibleZone, ZoneKind};
use socfmea_iec61508::Fit;

/// Per-element failure rates and derating factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitModel {
    /// Transient (soft-error/glitch) rate per combinational gate.
    pub gate_transient: Fit,
    /// Permanent (stuck-at/bridging/open) rate per combinational gate.
    pub gate_permanent: Fit,
    /// Transient (SEU) rate per flip-flop bit.
    pub ff_transient: Fit,
    /// Permanent rate per flip-flop bit.
    pub ff_permanent: Fit,
    /// Rate per primary I/O net, transient.
    pub io_transient: Fit,
    /// Rate per primary I/O net, permanent.
    pub io_permanent: Fit,
    /// Rate per critical net (clock/reset root), transient.
    pub critical_transient: Fit,
    /// Rate per critical net, permanent.
    pub critical_permanent: Fit,
    /// Probability that a combinational glitch is sampled by the capturing
    /// register (an unsampled glitch "is not considered as an hazard since
    /// it doesn't perturb the function", §3).
    pub transient_capture: f64,
}

impl Default for FitModel {
    fn default() -> FitModel {
        FitModel {
            gate_transient: Fit(0.002),
            gate_permanent: Fit(0.001),
            ff_transient: Fit(0.05),
            ff_permanent: Fit(0.002),
            io_transient: Fit(0.01),
            io_permanent: Fit(0.005),
            critical_transient: Fit(0.02),
            critical_permanent: Fit(0.01),
            transient_capture: 0.2,
        }
    }
}

impl FitModel {
    /// Scales every transient rate by `k` (sensitivity sweeps).
    pub fn scale_transient(mut self, k: f64) -> FitModel {
        self.gate_transient = self.gate_transient * k;
        self.ff_transient = self.ff_transient * k;
        self.io_transient = self.io_transient * k;
        self.critical_transient = self.critical_transient * k;
        self
    }

    /// Scales every permanent rate by `k`.
    pub fn scale_permanent(mut self, k: f64) -> FitModel {
        self.gate_permanent = self.gate_permanent * k;
        self.ff_permanent = self.ff_permanent * k;
        self.io_permanent = self.io_permanent * k;
        self.critical_permanent = self.critical_permanent * k;
        self
    }

    /// The raw transient failure rate converging on a zone: SEUs in its
    /// storage bits plus sampled glitches from its converging cone.
    pub fn zone_transient(&self, zone: &SensibleZone) -> Fit {
        match &zone.kind {
            ZoneKind::PrimaryInputGroup { nets } | ZoneKind::PrimaryOutputGroup { nets } => {
                self.io_transient * nets.len() as f64
                    + self.gate_transient * (zone.effective_gate_count * self.transient_capture)
            }
            ZoneKind::CriticalNet { .. } => self.critical_transient,
            ZoneKind::LogicalEntity { nets } => {
                self.gate_transient
                    * (zone.effective_gate_count.max(nets.len() as f64) * self.transient_capture)
            }
            ZoneKind::RegisterGroup { .. } | ZoneKind::SubBlock { .. } => {
                self.ff_transient * zone.storage_bits() as f64
                    + self.gate_transient * (zone.effective_gate_count * self.transient_capture)
            }
        }
    }

    /// The raw permanent failure rate converging on a zone: hard faults in
    /// its storage bits plus hard faults anywhere in the converging cone.
    pub fn zone_permanent(&self, zone: &SensibleZone) -> Fit {
        match &zone.kind {
            ZoneKind::PrimaryInputGroup { nets } | ZoneKind::PrimaryOutputGroup { nets } => {
                self.io_permanent * nets.len() as f64
                    + self.gate_permanent * zone.effective_gate_count
            }
            ZoneKind::CriticalNet { .. } => self.critical_permanent,
            ZoneKind::LogicalEntity { nets } => {
                self.gate_permanent * zone.effective_gate_count.max(nets.len() as f64)
            }
            ZoneKind::RegisterGroup { .. } | ZoneKind::SubBlock { .. } => {
                self.ff_permanent * zone.storage_bits() as f64
                    + self.gate_permanent * zone.effective_gate_count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;

    fn zones() -> crate::extract::ZoneSet {
        let mut r = RtlBuilder::new("m");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 8);
        let inv = r.not(&d);
        let q = r.register("r", &inv, None, None);
        r.output_word("q", &q);
        let nl = r.finish().unwrap();
        extract_zones(&nl, &ExtractConfig::default())
    }

    #[test]
    fn register_zone_rates_scale_with_bits_and_cone() {
        let zones = zones();
        let fit = FitModel::default();
        let reg = zones.zone_by_name("r").unwrap();
        let t = fit.zone_transient(reg);
        let p = fit.zone_permanent(reg);
        // 8 bits + 8 cone inverters
        let expected_t = 8.0 * fit.ff_transient.0 + 8.0 * fit.gate_transient.0 * 0.2;
        let expected_p = 8.0 * fit.ff_permanent.0 + 8.0 * fit.gate_permanent.0;
        assert!((t.0 - expected_t).abs() < 1e-12);
        assert!((p.0 - expected_p).abs() < 1e-12);
    }

    #[test]
    fn io_zone_rates_scale_with_net_count() {
        let zones = zones();
        let fit = FitModel::default();
        let pi = zones.zone_by_name("pi/d").unwrap();
        assert!((fit.zone_permanent(pi).0 - 8.0 * fit.io_permanent.0).abs() < 1e-12);
    }

    #[test]
    fn critical_net_uses_dedicated_rates() {
        let zones = zones();
        let fit = FitModel::default();
        let clk = zones.zone_by_name("critnet/clk").unwrap();
        assert_eq!(fit.zone_permanent(clk), fit.critical_permanent);
        assert_eq!(fit.zone_transient(clk), fit.critical_transient);
    }

    #[test]
    fn scaling_multiplies_only_the_selected_family() {
        let base = FitModel::default();
        let scaled = base.scale_transient(3.0);
        assert!((scaled.ff_transient.0 - base.ff_transient.0 * 3.0).abs() < 1e-12);
        assert_eq!(scaled.ff_permanent, base.ff_permanent);
        let scaled = base.scale_permanent(0.5);
        assert!((scaled.gate_permanent.0 - base.gate_permanent.0 * 0.5).abs() < 1e-12);
        assert_eq!(scaled.gate_transient, base.gate_transient);
    }
}
