//! Rendering of the FMEA worksheet as text tables and CSV.
//!
//! The paper's deliverable is "very detailed reports on sensible zones,
//! fault effects, failure rates, etc" (§7); these renderers produce the
//! spreadsheet-shaped views the experiment binaries print.

use crate::extract::ZoneSet;
use crate::worksheet::FmeaResult;
use std::fmt::Write;

/// Renders the SoC summary plus a per-zone table, most critical first.
pub fn render_text(result: &FmeaResult, zones: &ZoneSet) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== FMEA summary ==");
    let _ = writeln!(
        s,
        "zones: {}   total lambda: {}",
        zones.len(),
        result.total.total()
    );
    let _ = writeln!(
        s,
        "lambda_S = {}   lambda_DD = {}   lambda_DU = {}",
        result.total.safe, result.total.dangerous_detected, result.total.dangerous_undetected
    );
    match (result.sff(), result.dc()) {
        (Some(sff), Some(dc)) => {
            let _ = writeln!(s, "SFF = {:.2}%   DC = {:.2}%", sff * 100.0, dc * 100.0);
        }
        _ => {
            let _ = writeln!(s, "SFF/DC undefined (zero failure rates)");
        }
    }
    let sil = result
        .sil()
        .map(|v| v.to_string())
        .unwrap_or_else(|| "none (architectural constraints not met)".into());
    let _ = writeln!(
        s,
        "SIL grant at {} ({:?}-type): {}",
        result.hft, result.subsystem, sil
    );
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:<40} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "zone (by criticality)", "kind", "lambda_S", "lambda_DD", "lambda_DU", "DC%"
    );
    for (zone, _du) in result.ranking() {
        let z = zones.zone(zone);
        let l = &result.zone_totals[zone.index()];
        let dc = result
            .zone_dc(zone)
            .map(|d| format!("{:.1}", d * 100.0))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:<40} {:>6} {:>12.5} {:>12.5} {:>12.5} {:>8}",
            truncate(&z.name, 40),
            z.kind.tag(),
            l.safe.0,
            l.dangerous_detected.0,
            l.dangerous_undetected.0,
            dc
        );
    }
    s
}

/// Renders every worksheet row as CSV (header included), the
/// machine-readable form of the spreadsheet.
pub fn render_csv(result: &FmeaResult, zones: &ZoneSet) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "zone,kind,block,mode,persistence,raw_fit,d_fraction,ddf,lambda_s,lambda_dd,lambda_du,techniques"
    );
    for row in &result.rows {
        let z = zones.zone(row.zone);
        let techs = row
            .techniques
            .iter()
            .map(|t| format!("{t:?}"))
            .collect::<Vec<_>>()
            .join("+");
        let _ = writeln!(
            s,
            "{},{},{},{},{},{:.6},{:.4},{:.4},{:.6},{:.6},{:.6},{}",
            csv_escape(&z.name),
            z.kind.tag(),
            csv_escape(&z.block),
            row.mode_key,
            row.persistence,
            row.raw.0,
            row.d_fraction,
            row.ddf,
            row.lambda.safe.0,
            row.lambda.dangerous_detected.0,
            row.lambda.dangerous_undetected.0,
            techs
        );
    }
    s
}

/// Renders the criticality ranking (top `n`) as a compact table.
pub fn render_ranking(result: &FmeaResult, zones: &ZoneSet, n: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<4} {:<44} {:>12}", "#", "zone", "lambda_DU");
    for (i, (zone, du)) in result.ranking().into_iter().take(n).enumerate() {
        let _ = writeln!(
            s,
            "{:<4} {:<44} {:>12.6}",
            i + 1,
            truncate(&zones.zone(zone).name, 44),
            du.0
        );
    }
    s
}

/// Renders the Safety Requirements Specification-style markdown document
/// the norm asks for: "the release of a Safety Requirements Specification
/// (SRS) including a detailed FMEA of the system or sub-system" (paper §2).
///
/// The document contains the system inventory, the metric summary under
/// both norms, the criticality ranking, the per-zone worksheet and the
/// predicted table of effects.
pub fn render_srs(
    title: &str,
    result: &FmeaResult,
    zones: &ZoneSet,
    effects: &[crate::effects::ZoneEffects],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Safety Requirements Specification — {title}\n");
    let _ = writeln!(s, "## 1. System inventory\n");
    let (seq, bits): (usize, usize) = zones
        .zones()
        .iter()
        .map(|z| (usize::from(z.is_sequential()), z.storage_bits()))
        .fold((0, 0), |acc, v| (acc.0 + v.0, acc.1 + v.1));
    let _ = writeln!(
        s,
        "{} sensible zones ({} sequential, {} storage bits total).\n",
        zones.len(),
        seq,
        bits
    );
    let _ = writeln!(
        s,
        "| zone | kind | class | bits | cone gates (apportioned) |"
    );
    let _ = writeln!(s, "|---|---|---|---:|---:|");
    for z in zones.zones() {
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {:.1} |",
            z.name,
            z.kind.tag(),
            z.class,
            z.storage_bits(),
            z.effective_gate_count
        );
    }

    let _ = writeln!(s, "\n## 2. Safety metrics\n");
    match (result.sff(), result.dc()) {
        (Some(sff), Some(dc)) => {
            let _ = writeln!(
                s,
                "* Safe Failure Fraction **SFF = {:.2} %**, Diagnostic Coverage **DC = {:.2} %**",
                sff * 100.0,
                dc * 100.0
            );
        }
        _ => {
            let _ = writeln!(s, "* SFF/DC undefined (zero failure rates)");
        }
    }
    let sil = result
        .sil()
        .map(|v| v.to_string())
        .unwrap_or_else(|| "none (architectural constraints not met)".into());
    let _ = writeln!(
        s,
        "* IEC 61508 grant at {} ({:?}-type subsystem): **{}**",
        result.hft, result.subsystem, sil
    );
    if let Some(m) = result.automotive_metrics() {
        let _ = writeln!(
            s,
            "* ISO 26262 reading: SPFM {:.2} %, LFM {:.2} %, PMHF {:.3e}/h → **{}**",
            m.spfm * 100.0,
            m.lfm * 100.0,
            m.pmhf,
            m.achievable_asil()
        );
    }

    let _ = writeln!(s, "\n## 3. Criticality ranking (top 15)\n");
    let _ = writeln!(s, "| # | zone | λ_DU [FIT] |");
    let _ = writeln!(s, "|---:|---|---:|");
    for (i, (zone, du)) in result.ranking().into_iter().take(15).enumerate() {
        let _ = writeln!(s, "| {} | {} | {:.6} |", i + 1, zones.zone(zone).name, du.0);
    }

    let _ = writeln!(s, "\n## 4. Detailed FMEA worksheet\n");
    let _ = writeln!(
        s,
        "| zone | failure mode | type | λ [FIT] | D | DDF | λ_DU [FIT] | techniques |"
    );
    let _ = writeln!(s, "|---|---|---|---:|---:|---:|---:|---|");
    for row in &result.rows {
        let techs = row
            .techniques
            .iter()
            .map(|t| format!("{t:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:.5} | {:.2} | {:.2} | {:.6} | {} |",
            zones.zone(row.zone).name,
            row.mode_key,
            row.persistence,
            row.raw.0,
            row.d_fraction,
            row.ddf,
            row.lambda.dangerous_undetected.0,
            if techs.is_empty() {
                "—".into()
            } else {
                techs
            }
        );
    }

    let _ = writeln!(s, "\n## 5. Predicted table of effects\n");
    let _ = writeln!(s, "| zone | main effects | secondary effects |");
    let _ = writeln!(s, "|---|---|---|");
    for fx in effects {
        if fx.main.is_empty() && fx.secondary.is_empty() {
            continue;
        }
        let names = |ids: &[crate::zone::ZoneId]| {
            ids.iter()
                .map(|&z| zones.zone(z).name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} |",
            zones.zone(fx.zone).name,
            names(&fx.main),
            names(&fx.secondary)
        );
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use crate::worksheet::Worksheet;
    use socfmea_rtl::RtlBuilder;

    fn setup() -> (crate::extract::ZoneSet, FmeaResult) {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 4);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        let result = Worksheet::new(&zones).compute();
        (zones, result)
    }

    #[test]
    fn text_report_contains_summary_and_zones() {
        let (zones, result) = setup();
        let text = render_text(&result, &zones);
        assert!(text.contains("SFF ="));
        assert!(text.contains("SIL grant"));
        assert!(text.contains("q"));
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let (zones, result) = setup();
        let csv = render_csv(&result, &zones);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("zone,kind"));
        assert_eq!(lines.len(), result.rows.len() + 1);
    }

    #[test]
    fn ranking_is_limited_to_n() {
        let (zones, result) = setup();
        let r = render_ranking(&result, &zones, 2);
        assert_eq!(r.lines().count(), 3); // header + 2
    }

    #[test]
    fn srs_contains_all_sections() {
        let (zones, result) = setup();
        let nlres: Vec<crate::effects::ZoneEffects> = zones
            .zones()
            .iter()
            .map(|z| crate::effects::ZoneEffects {
                zone: z.id,
                main: Vec::new(),
                secondary: Vec::new(),
            })
            .collect();
        let srs = render_srs("demo", &result, &zones, &nlres);
        for section in [
            "# Safety Requirements Specification — demo",
            "## 1. System inventory",
            "## 2. Safety metrics",
            "## 3. Criticality ranking",
            "## 4. Detailed FMEA worksheet",
            "## 5. Predicted table of effects",
        ] {
            assert!(srs.contains(section), "missing `{section}`");
        }
        assert!(srs.contains("SFF ="));
        assert!(srs.contains("ISO 26262 reading"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
