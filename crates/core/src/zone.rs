//! Sensible zones — the elementary failure points of the SoC.
//!
//! "A sensible zone is one of the elementary failure points of the SoC in
//! which one or more faults converge to lead a failure" (paper §3). Valid
//! zones are memory elements (registers), primary inputs/outputs, logical
//! entities, critical nets (clock/reset/long nets) and entire sub-blocks.

use socfmea_iec61508::ComponentClass;
use socfmea_netlist::{Cone, ConeStats, CriticalNetKind, DffId, GateId, NetId};
use std::fmt;

/// Identifies a sensible zone within a [`ZoneSet`](crate::extract::ZoneSet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32`.
    pub fn from_index(index: usize) -> ZoneId {
        ZoneId(u32::try_from(index).expect("zone index exceeds u32"))
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

/// The kind of a sensible zone, mirroring the paper's valid definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneKind {
    /// A group of memory elements (the bits of one architectural register).
    /// "The state register has a fundamental role in the functional
    /// behaviour of the machine, so it is worth to consider such state
    /// registers as the best candidates to become sensible zones."
    RegisterGroup {
        /// The flip-flops forming the register.
        dffs: Vec<DffId>,
    },
    /// A group of primary input nets (one bus).
    PrimaryInputGroup {
        /// The input nets, LSB first.
        nets: Vec<NetId>,
    },
    /// A group of primary output nets (one bus).
    PrimaryOutputGroup {
        /// The output nets, LSB first.
        nets: Vec<NetId>,
    },
    /// A logical entity that may or may not map directly to memory elements
    /// (e.g. "wrong conditional field of an instruction").
    LogicalEntity {
        /// The nets carrying the entity.
        nets: Vec<NetId>,
    },
    /// A critical net such as a clock or long net that could generate
    /// multiple failures.
    CriticalNet {
        /// The net.
        net: NetId,
        /// Its role.
        role: CriticalNetKind,
    },
    /// An entire sub-block, "to take more simply into account bigger cones
    /// of logic or to consider all together a complex block with a small
    /// number of outputs".
    SubBlock {
        /// Gates of the block.
        gates: Vec<GateId>,
        /// Flip-flops of the block.
        dffs: Vec<DffId>,
    },
}

impl ZoneKind {
    /// Short kind tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ZoneKind::RegisterGroup { .. } => "reg",
            ZoneKind::PrimaryInputGroup { .. } => "pi",
            ZoneKind::PrimaryOutputGroup { .. } => "po",
            ZoneKind::LogicalEntity { .. } => "entity",
            ZoneKind::CriticalNet { .. } => "critnet",
            ZoneKind::SubBlock { .. } => "block",
        }
    }

    /// Number of storage bits the zone directly contains.
    pub fn storage_bits(&self) -> usize {
        match self {
            ZoneKind::RegisterGroup { dffs } | ZoneKind::SubBlock { dffs, .. } => dffs.len(),
            _ => 0,
        }
    }
}

/// A sensible zone with its extracted structural statistics.
#[derive(Debug, Clone)]
pub struct SensibleZone {
    /// Identity within the owning zone set.
    pub id: ZoneId,
    /// Unique, human-readable name (`block/register` style).
    pub name: String,
    /// What the zone is.
    pub kind: ZoneKind,
    /// Hierarchical block path the zone belongs to.
    pub block: String,
    /// Anchor nets: where the zone's failure modes are observed/injected
    /// (register `q` nets, the bus nets, the critical net).
    pub anchors: Vec<NetId>,
    /// The converging logic cone feeding the zone.
    pub cone: Cone,
    /// Cone statistics for the FMEA statistical model.
    pub stats: ConeStats,
    /// Cone gate count with *wide* gates apportioned across the cones that
    /// share them (a gate in `k` cones contributes `1/k` to each), so that
    /// summing over all zones conserves the total gate failure rate. This
    /// is what the paper's "correlation between each sensible zone in terms
    /// of shared gates" feeds into the statistical model.
    pub effective_gate_count: f64,
    /// IEC 61508 component class the zone is assessed under.
    pub class: ComponentClass,
}

impl SensibleZone {
    /// Number of storage bits (flip-flops) in the zone.
    pub fn storage_bits(&self) -> usize {
        self.kind.storage_bits()
    }

    /// True for zones that *store* state (registers, sub-blocks with
    /// flip-flops) — the targets of soft-error injection.
    pub fn is_sequential(&self) -> bool {
        self.storage_bits() > 0
    }
}

impl fmt::Display for SensibleZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({} bits, cone {} gates depth {})",
            self.id,
            self.kind.tag(),
            self.name,
            self.storage_bits(),
            self.stats.gate_count,
            self.stats.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_id_round_trip() {
        let z = ZoneId::from_index(12);
        assert_eq!(z.index(), 12);
        assert_eq!(z.to_string(), "z12");
    }

    #[test]
    fn kind_tags_and_bits() {
        let k = ZoneKind::RegisterGroup {
            dffs: vec![DffId(0), DffId(1)],
        };
        assert_eq!(k.tag(), "reg");
        assert_eq!(k.storage_bits(), 2);
        let k = ZoneKind::PrimaryInputGroup {
            nets: vec![NetId(0)],
        };
        assert_eq!(k.tag(), "pi");
        assert_eq!(k.storage_bits(), 0);
        let k = ZoneKind::CriticalNet {
            net: NetId(0),
            role: CriticalNetKind::Clock,
        };
        assert_eq!(k.tag(), "critnet");
    }
}
