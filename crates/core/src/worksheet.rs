//! The FMEA worksheet ("spreadsheet") engine.
//!
//! This reproduces the paper's spreadsheet (§3–§4): for every sensible zone
//! and failure mode it combines
//!
//! * the structural statistics extracted from the netlist (cone gate counts,
//!   storage bits) with the elementary FIT model,
//! * the user factors **S** and **D** (safe/dangerous split, architectural
//!   and applicational), the **frequency class F** and the **lifetime ζ**,
//! * the claimed **DDF** (detected dangerous fraction) per diagnostic
//!   technique, split HW/SW and transient/permanent, each capped at the
//!   maximum DC the norm credits the technique with (Annex A),
//!
//! and computes λ_S, λ_D = λ_DD + λ_DU per zone and for the whole SoC,
//! the Diagnostic Coverage DC = λ_DD/λ_D, the Safe Failure Fraction
//! SFF = (λ_S + λ_DD)/(λ_S + λ_D), the SIL grant versus HFT, and a
//! criticality ranking of zones.

use crate::extract::ZoneSet;
use crate::fit_model::FitModel;
use crate::zone::ZoneId;
use socfmea_iec61508::failure_modes::Persistence;
use socfmea_iec61508::{
    annex_a, diagnostic_coverage, required_failure_modes, safe_failure_fraction, sil_from_sff, Fit,
    Hft, LambdaBreakdown, Sil, SubsystemType, TechniqueId,
};
use std::fmt;

/// The frequency class F of a zone, "used to estimate its usage
/// frequencies" (paper §3). The usage factor scales the dangerous fraction:
/// a zone that is rarely active converts most of its faults into safe
/// failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FreqClass {
    /// Active in well under 10 % of cycles.
    VeryLow,
    /// Active in roughly 10 % of cycles.
    Low,
    /// Active in roughly a third of cycles.
    Medium,
    /// Active most of the time.
    High,
    /// Continuously active.
    VeryHigh,
}

impl FreqClass {
    /// The usage factor applied to the dangerous fraction.
    pub fn usage(self) -> f64 {
        match self {
            FreqClass::VeryLow => 0.05,
            FreqClass::Low => 0.15,
            FreqClass::Medium => 0.35,
            FreqClass::High => 0.65,
            FreqClass::VeryHigh => 0.95,
        }
    }

    /// Shifts the class up (`+1`) or down (`-1`) for sensitivity sweeps,
    /// saturating at the extremes.
    pub fn shifted(self, delta: i8) -> FreqClass {
        const ORDER: [FreqClass; 5] = [
            FreqClass::VeryLow,
            FreqClass::Low,
            FreqClass::Medium,
            FreqClass::High,
            FreqClass::VeryHigh,
        ];
        let idx = ORDER.iter().position(|&c| c == self).expect("member") as i32;
        // widen before adding: `idx + delta` in i8 would overflow for
        // deltas near the type bounds instead of saturating
        let new = (idx + i32::from(delta)).clamp(0, 4) as usize;
        ORDER[new]
    }
}

impl fmt::Display for FreqClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FreqClass::VeryLow => "very-low",
            FreqClass::Low => "low",
            FreqClass::Medium => "medium",
            FreqClass::High => "high",
            FreqClass::VeryHigh => "very-high",
        };
        f.write_str(s)
    }
}

/// A diagnostic-coverage claim attached to a zone: which technique covers
/// it, and the claimed detected-dangerous fractions. The worksheet caps the
/// claims at the technique's Annex A maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticClaim {
    /// The implementing technique (determines the DC cap and HW/SW split).
    pub technique: TechniqueId,
    /// Claimed DDF for transient/intermittent faults, `0..=1`.
    pub ddf_transient: f64,
    /// Claimed DDF for permanent faults, `0..=1`.
    pub ddf_permanent: f64,
    /// Restrict the claim to specific failure-mode keys (`None` = all modes
    /// of the zone).
    pub mode_filter: Option<Vec<String>>,
}

impl DiagnosticClaim {
    /// A claim covering all failure modes of the zone at the technique's
    /// maximum credited coverage.
    pub fn at_max(technique: TechniqueId) -> DiagnosticClaim {
        let max = annex_a::technique(technique).max_dc.fraction();
        DiagnosticClaim {
            technique,
            ddf_transient: max,
            ddf_permanent: max,
            mode_filter: None,
        }
    }

    /// Restricts the claim to the given failure-mode keys.
    pub fn for_modes(mut self, modes: &[&str]) -> DiagnosticClaim {
        self.mode_filter = Some(modes.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    fn applies_to(&self, mode_key: &str) -> bool {
        match &self.mode_filter {
            None => true,
            Some(keys) => keys.iter().any(|k| k == mode_key),
        }
    }
}

/// Per-zone worksheet assumptions (the user-provided S, D, F, ζ and DDF
/// columns of the paper's spreadsheet).
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneAssumptions {
    /// Architectural safe fraction: failures masked by construction (e.g. a
    /// zone blocked by masking gates at run time).
    pub s_architectural: f64,
    /// Applicational safe fraction: failures irrelevant to the given
    /// application (usually 0 — "usually only architectural S/D factors are
    /// considered").
    pub s_applicational: f64,
    /// Frequency class F.
    pub freq: FreqClass,
    /// Lifetime ζ exposure factor in `0..=1`: the fraction of the mission
    /// during which a transient corruption of the stored value can still be
    /// consumed ("the time between the average last read and the write").
    pub lifetime_exposure: f64,
    /// Diagnostic claims covering this zone.
    pub diagnostics: Vec<DiagnosticClaim>,
    /// Relative weights apportioning the zone's failure rate across its
    /// required failure modes (unlisted modes weigh `1.0`). E.g. a memory
    /// word whose address decode is shared (and zoned separately) gives the
    /// `addressing` mode a small weight.
    pub mode_weights: Vec<(String, f64)>,
    /// True for zones that implement a *safety mechanism* (checkers, alarm
    /// registers, BIST): their undetected faults cannot violate the safety
    /// goal alone but stay **latent** until a second fault arrives — the
    /// quantity the ISO 26262 latent fault metric (LFM) tracks.
    pub is_diagnostic: bool,
}

impl Default for ZoneAssumptions {
    fn default() -> ZoneAssumptions {
        ZoneAssumptions {
            s_architectural: 0.4,
            s_applicational: 0.0,
            freq: FreqClass::High,
            lifetime_exposure: 1.0,
            diagnostics: Vec::new(),
            mode_weights: Vec::new(),
            is_diagnostic: false,
        }
    }
}

impl ZoneAssumptions {
    /// The relative weight of a failure-mode key (default `1.0`).
    pub fn mode_weight(&self, key: &str) -> f64 {
        self.mode_weights
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, w)| w)
            .unwrap_or(1.0)
    }

    /// Sets the relative weight of a failure-mode key.
    pub fn set_mode_weight(&mut self, key: impl Into<String>, weight: f64) {
        let key = key.into();
        if let Some(e) = self.mode_weights.iter_mut().find(|(k, _)| *k == key) {
            e.1 = weight;
        } else {
            self.mode_weights.push((key, weight));
        }
    }

    /// The dangerous fraction for permanent faults:
    /// `(1-S_arch)·(1-S_app)·usage(F)`.
    pub fn d_permanent(&self) -> f64 {
        (1.0 - self.s_architectural) * (1.0 - self.s_applicational) * self.freq.usage()
    }

    /// The dangerous fraction for transient faults: the permanent fraction
    /// further scaled by the lifetime exposure ζ.
    pub fn d_transient(&self) -> f64 {
        self.d_permanent() * self.lifetime_exposure
    }
}

/// Whether a worksheet row accounts transient or permanent faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowPersistence {
    /// Transient / intermittent faults.
    Transient,
    /// Permanent faults.
    Permanent,
}

impl fmt::Display for RowPersistence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RowPersistence::Transient => "transient",
            RowPersistence::Permanent => "permanent",
        })
    }
}

/// One row of the FMEA worksheet: a (zone, failure mode, persistence)
/// triple with its computed rates.
#[derive(Debug, Clone, PartialEq)]
pub struct WorksheetRow {
    /// The zone.
    pub zone: ZoneId,
    /// Failure-mode key from the norm's required list.
    pub mode_key: &'static str,
    /// Norm wording of the failure mode.
    pub description: &'static str,
    /// Transient or permanent accounting.
    pub persistence: RowPersistence,
    /// Raw failure rate apportioned to this row.
    pub raw: Fit,
    /// Dangerous fraction applied (after S, F, ζ).
    pub d_fraction: f64,
    /// Effective detected-dangerous fraction after capping and derating.
    pub ddf: f64,
    /// Techniques contributing to the DDF.
    pub techniques: Vec<TechniqueId>,
    /// The resulting λ split.
    pub lambda: LambdaBreakdown,
}

/// The computed FMEA: all rows plus aggregates.
#[derive(Debug, Clone)]
pub struct FmeaResult {
    /// All worksheet rows.
    pub rows: Vec<WorksheetRow>,
    /// λ aggregates per zone (indexable by [`ZoneId::index`]).
    pub zone_totals: Vec<LambdaBreakdown>,
    /// λ aggregate for the whole SoC.
    pub total: LambdaBreakdown,
    /// Undetected failure rate of safety-mechanism (diagnostic) zones:
    /// multiple-point **latent** faults in the ISO 26262 reading.
    pub latent: Fit,
    /// Hardware fault tolerance assumed for the SIL grant.
    pub hft: Hft,
    /// Subsystem type assumed for the SIL grant.
    pub subsystem: SubsystemType,
}

impl FmeaResult {
    /// SoC-level Safe Failure Fraction.
    pub fn sff(&self) -> Option<f64> {
        self.total.safe_failure_fraction()
    }

    /// SoC-level Diagnostic Coverage.
    pub fn dc(&self) -> Option<f64> {
        self.total.diagnostic_coverage()
    }

    /// The SIL the SoC can be granted under the assumed HFT/subsystem type.
    pub fn sil(&self) -> Option<Sil> {
        self.sff()
            .and_then(|sff| sil_from_sff(sff, self.hft, self.subsystem))
    }

    /// Zones ranked by criticality (descending λ_DU — the undetected
    /// dangerous contribution).
    pub fn ranking(&self) -> Vec<(ZoneId, Fit)> {
        let mut v: Vec<(ZoneId, Fit)> = self
            .zone_totals
            .iter()
            .enumerate()
            .map(|(i, l)| (ZoneId::from_index(i), l.dangerous_undetected))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// The diagnostic coverage achieved for one zone, if it has dangerous
    /// failures.
    pub fn zone_dc(&self, zone: ZoneId) -> Option<f64> {
        self.zone_totals[zone.index()].diagnostic_coverage()
    }

    /// The diagnostic coverage of one zone restricted to the rows of one
    /// failure mode (e.g. `"soft_error"`). This is the estimate a
    /// mode-specific injection campaign (bit flips ↔ soft errors) must be
    /// compared against.
    pub fn zone_mode_dc(&self, zone: ZoneId, mode_key: &str) -> Option<f64> {
        let mut dd = Fit::ZERO;
        let mut du = Fit::ZERO;
        for row in self
            .rows
            .iter()
            .filter(|r| r.zone == zone && r.mode_key == mode_key)
        {
            dd += row.lambda.dangerous_detected;
            du += row.lambda.dangerous_undetected;
        }
        diagnostic_coverage(dd, du)
    }

    /// The dangerous fraction λ_D/λ estimated for one zone.
    pub fn zone_d_fraction(&self, zone: ZoneId) -> Option<f64> {
        let t = self.zone_totals[zone.index()];
        let total = t.total();
        if total.0 <= 0.0 {
            return None;
        }
        Some(t.total_dangerous().0 / total.0)
    }

    /// SFF restricted to one zone.
    pub fn zone_sff(&self, zone: ZoneId) -> Option<f64> {
        self.zone_totals[zone.index()].safe_failure_fraction()
    }

    /// The ISO 26262 reading of the same worksheet: SPFM, LFM and PMHF
    /// (see [`socfmea_iec61508::iso26262`]). `None` for an all-zero model.
    ///
    /// [`socfmea_iec61508::iso26262`]: socfmea_iec61508::iso26262
    pub fn automotive_metrics(&self) -> Option<socfmea_iec61508::AutomotiveMetrics> {
        socfmea_iec61508::AutomotiveMetrics::from_lambda(&self.total, self.latent)
    }
}

/// The FMEA worksheet: zones + FIT model + per-zone assumptions.
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_core::worksheet::{DiagnosticClaim, Worksheet};
/// use socfmea_iec61508::TechniqueId;
/// use socfmea_rtl::RtlBuilder;
///
/// let mut r = RtlBuilder::new("demo");
/// let d = r.input_word("d", 8);
/// let q = r.register("state", &d, None, None);
/// r.output_word("q", &q);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
///
/// let mut ws = Worksheet::new(&zones);
/// let state = zones.zone_by_name("state").unwrap().id;
/// ws.add_diagnostic(state, DiagnosticClaim::at_max(TechniqueId::RamEcc));
/// let result = ws.compute();
/// assert!(result.sff().unwrap() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Worksheet<'a> {
    zones: &'a ZoneSet,
    fit: FitModel,
    assumptions: Vec<ZoneAssumptions>,
    hft: Hft,
    subsystem: SubsystemType,
    ddf_derating: f64,
}

impl<'a> Worksheet<'a> {
    /// Creates a worksheet with default assumptions for every zone, HFT 0
    /// and type-B subsystem (the SoC case).
    pub fn new(zones: &'a ZoneSet) -> Worksheet<'a> {
        Worksheet {
            zones,
            fit: FitModel::default(),
            assumptions: vec![ZoneAssumptions::default(); zones.len()],
            hft: Hft(0),
            subsystem: SubsystemType::B,
            ddf_derating: 1.0,
        }
    }

    /// The zone set this worksheet analyses.
    pub fn zones(&self) -> &'a ZoneSet {
        self.zones
    }

    /// Replaces the FIT model.
    pub fn set_fit_model(&mut self, fit: FitModel) {
        self.fit = fit;
    }

    /// The current FIT model.
    pub fn fit_model(&self) -> FitModel {
        self.fit
    }

    /// Sets the assumed hardware fault tolerance for the SIL grant.
    pub fn set_hft(&mut self, hft: Hft) {
        self.hft = hft;
    }

    /// The hardware fault tolerance assumed for the SIL grant.
    pub fn hft(&self) -> Hft {
        self.hft
    }

    /// Sets the subsystem type (A/B) for the SIL grant.
    pub fn set_subsystem(&mut self, ty: SubsystemType) {
        self.subsystem = ty;
    }

    /// The subsystem type (A/B) assumed for the SIL grant.
    pub fn subsystem(&self) -> SubsystemType {
        self.subsystem
    }

    /// Applies a global derating factor to every claimed DDF (sensitivity
    /// knob).
    pub fn set_ddf_derating(&mut self, k: f64) {
        self.ddf_derating = k;
    }

    /// The current global DDF derating factor.
    pub fn ddf_derating(&self) -> f64 {
        self.ddf_derating
    }

    /// Mutable access to one zone's assumptions.
    pub fn assumptions_mut(&mut self, zone: ZoneId) -> &mut ZoneAssumptions {
        &mut self.assumptions[zone.index()]
    }

    /// Read access to one zone's assumptions.
    pub fn assumptions(&self, zone: ZoneId) -> &ZoneAssumptions {
        &self.assumptions[zone.index()]
    }

    /// Replaces one zone's assumptions.
    pub fn set_assumptions(&mut self, zone: ZoneId, a: ZoneAssumptions) {
        self.assumptions[zone.index()] = a;
    }

    /// Adds a diagnostic claim to one zone.
    pub fn add_diagnostic(&mut self, zone: ZoneId, claim: DiagnosticClaim) {
        self.assumptions[zone.index()].diagnostics.push(claim);
    }

    /// Applies a closure to every zone's assumptions (bulk setup).
    pub fn assume_all<F>(&mut self, mut f: F)
    where
        F: FnMut(&crate::zone::SensibleZone, &mut ZoneAssumptions),
    {
        for z in self.zones.zones() {
            f(z, &mut self.assumptions[z.id.index()]);
        }
    }

    /// Computes the full FMEA.
    pub fn compute(&self) -> FmeaResult {
        let mut rows = Vec::new();
        let mut zone_totals = vec![LambdaBreakdown::default(); self.zones.len()];
        let mut total = LambdaBreakdown::default();
        let mut latent = Fit::ZERO;

        for zone in self.zones.zones() {
            let a = &self.assumptions[zone.id.index()];
            let modes = required_failure_modes(zone.class);
            for persistence in [RowPersistence::Transient, RowPersistence::Permanent] {
                let pool_lambda = match persistence {
                    RowPersistence::Transient => self.fit.zone_transient(zone),
                    RowPersistence::Permanent => self.fit.zone_permanent(zone),
                };
                let applicable: Vec<_> = modes
                    .iter()
                    .filter(|m| {
                        matches!(
                            (persistence, m.persistence),
                            (RowPersistence::Transient, Persistence::Transient)
                                | (RowPersistence::Transient, Persistence::Both)
                                | (RowPersistence::Permanent, Persistence::Permanent)
                                | (RowPersistence::Permanent, Persistence::Both)
                        )
                    })
                    .collect();
                if applicable.is_empty() {
                    continue;
                }
                let total_weight: f64 = applicable.iter().map(|m| a.mode_weight(m.key)).sum();
                for mode in applicable {
                    let share = if total_weight > 0.0 {
                        pool_lambda * (a.mode_weight(mode.key) / total_weight)
                    } else {
                        Fit::ZERO
                    };
                    let d_fraction = match persistence {
                        RowPersistence::Transient => a.d_transient(),
                        RowPersistence::Permanent => a.d_permanent(),
                    };
                    let mut miss = 1.0;
                    let mut techniques = Vec::new();
                    for claim in &a.diagnostics {
                        if !claim.applies_to(mode.key) {
                            continue;
                        }
                        let cap = annex_a::technique(claim.technique).max_dc;
                        let claimed = match persistence {
                            RowPersistence::Transient => claim.ddf_transient,
                            RowPersistence::Permanent => claim.ddf_permanent,
                        };
                        let effective = cap.cap(claimed) * self.ddf_derating;
                        if effective > 0.0 {
                            miss *= 1.0 - effective.clamp(0.0, 1.0);
                            techniques.push(claim.technique);
                        }
                    }
                    let ddf = 1.0 - miss;
                    let lambda_d = share * d_fraction;
                    let lambda = LambdaBreakdown {
                        safe: share * (1.0 - d_fraction),
                        dangerous_detected: lambda_d * ddf,
                        dangerous_undetected: lambda_d * (1.0 - ddf),
                    };
                    zone_totals[zone.id.index()].accumulate(&lambda);
                    total.accumulate(&lambda);
                    rows.push(WorksheetRow {
                        zone: zone.id,
                        mode_key: mode.key,
                        description: mode.description,
                        persistence,
                        raw: share,
                        d_fraction,
                        ddf,
                        techniques,
                        lambda,
                    });
                }
            }
        }

        for zone in self.zones.zones() {
            if self.assumptions[zone.id.index()].is_diagnostic {
                let t = &zone_totals[zone.id.index()];
                // everything the diagnostics-of-the-diagnostic miss stays
                // latent: the safe share plus the undetected dangerous share
                latent += t.safe + t.dangerous_undetected;
            }
        }
        FmeaResult {
            rows,
            zone_totals,
            total,
            latent,
            hft: self.hft,
            subsystem: self.subsystem,
        }
    }
}

/// Convenience re-exports used by reports.
pub use socfmea_iec61508::quantity::LambdaBreakdown as ZoneLambda;

/// Sanity helper: recomputes SFF from explicit rates (mirrors
/// [`safe_failure_fraction`] for doc discoverability).
pub fn sff_from_rates(safe: Fit, dd: Fit, du: Fit) -> Option<f64> {
    safe_failure_fraction(safe, dd, du)
}

/// Sanity helper: recomputes DC from explicit rates.
pub fn dc_from_rates(dd: Fit, du: Fit) -> Option<f64> {
    diagnostic_coverage(dd, du)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use socfmea_iec61508::ComponentClass;
    use socfmea_rtl::RtlBuilder;

    fn demo_zones() -> crate::extract::ZoneSet {
        let mut r = RtlBuilder::new("demo");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 8);
        r.push_block("mem");
        let q = r.register("data", &d, None, None);
        r.pop_block();
        r.output_word("q", &q);
        let nl = r.finish().unwrap();
        extract_zones(
            &nl,
            &ExtractConfig::default().classify("mem", ComponentClass::VariableMemory),
        )
    }

    #[test]
    fn rows_cover_required_modes_in_both_pools() {
        let zones = demo_zones();
        let ws = Worksheet::new(&zones);
        let result = ws.compute();
        let data = zones.zone_by_name("mem/data").unwrap().id;
        let keys: Vec<_> = result
            .rows
            .iter()
            .filter(|r| r.zone == data)
            .map(|r| (r.mode_key, r.persistence))
            .collect();
        // variable memory: permanent {dc_fault, crossover, addressing};
        // transient {soft_error, addressing}
        assert!(keys.contains(&("dc_fault", RowPersistence::Permanent)));
        assert!(keys.contains(&("soft_error", RowPersistence::Transient)));
        assert!(keys.contains(&("addressing", RowPersistence::Transient)));
        assert!(keys.contains(&("addressing", RowPersistence::Permanent)));
        assert!(!keys.contains(&("dc_fault", RowPersistence::Transient)));
    }

    #[test]
    fn lambda_is_conserved_across_rows() {
        let zones = demo_zones();
        let ws = Worksheet::new(&zones);
        let result = ws.compute();
        let fit = ws.fit_model();
        let mut expected = Fit::ZERO;
        for z in zones.zones() {
            expected += fit.zone_transient(z);
            expected += fit.zone_permanent(z);
        }
        assert!((result.total.total().0 - expected.0).abs() < 1e-9);
    }

    #[test]
    fn diagnostics_raise_sff_and_dc() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let base = ws.compute();
        let data = zones.zone_by_name("mem/data").unwrap().id;
        ws.add_diagnostic(data, DiagnosticClaim::at_max(TechniqueId::RamEcc));
        let with_ecc = ws.compute();
        assert!(with_ecc.sff().unwrap() > base.sff().unwrap());
        assert!(with_ecc.zone_dc(data).unwrap() > 0.9);
        assert!(base.zone_dc(data).unwrap() == 0.0);
    }

    #[test]
    fn ddf_claims_are_capped_by_annex_a() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let data = zones.zone_by_name("mem/data").unwrap().id;
        // parity claims 99.9% but the norm caps word parity at low (60%)
        ws.add_diagnostic(
            data,
            DiagnosticClaim {
                technique: TechniqueId::WordParity,
                ddf_transient: 0.999,
                ddf_permanent: 0.999,
                mode_filter: None,
            },
        );
        let result = ws.compute();
        let dc = result.zone_dc(data).unwrap();
        assert!((dc - 0.60).abs() < 1e-9, "dc={dc}");
    }

    #[test]
    fn mode_filter_restricts_coverage() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let data = zones.zone_by_name("mem/data").unwrap().id;
        ws.add_diagnostic(
            data,
            DiagnosticClaim::at_max(TechniqueId::RamEcc).for_modes(&["soft_error"]),
        );
        let result = ws.compute();
        for row in result.rows.iter().filter(|r| r.zone == data) {
            if row.mode_key == "soft_error" {
                assert!(row.ddf > 0.9);
            } else {
                assert_eq!(row.ddf, 0.0);
            }
        }
    }

    #[test]
    fn ranking_puts_uncovered_zones_first() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let data = zones.zone_by_name("mem/data").unwrap().id;
        ws.add_diagnostic(data, DiagnosticClaim::at_max(TechniqueId::RamEcc));
        let result = ws.compute();
        let ranking = result.ranking();
        // the covered memory zone must not be the most critical
        assert_ne!(ranking[0].0, data);
        // λ_DU is non-increasing
        for w in ranking.windows(2) {
            assert!(w[0].1 .0 >= w[1].1 .0);
        }
    }

    #[test]
    fn freq_class_shifting_saturates() {
        assert_eq!(FreqClass::VeryHigh.shifted(1), FreqClass::VeryHigh);
        assert_eq!(FreqClass::VeryLow.shifted(-1), FreqClass::VeryLow);
        assert_eq!(FreqClass::Medium.shifted(1), FreqClass::High);
        assert!(FreqClass::Low.usage() < FreqClass::High.usage());
    }

    #[test]
    fn freq_class_shifting_saturates_at_extreme_deltas() {
        // deltas near the i8 bounds must saturate, not overflow in the
        // index arithmetic (idx + 127 does not fit in i8)
        for class in [FreqClass::VeryLow, FreqClass::Medium, FreqClass::VeryHigh] {
            assert_eq!(class.shifted(i8::MAX), FreqClass::VeryHigh);
            assert_eq!(class.shifted(i8::MIN), FreqClass::VeryLow);
        }
    }

    #[test]
    fn d_fractions_combine_s_f_and_lifetime() {
        let a = ZoneAssumptions {
            s_architectural: 0.5,
            s_applicational: 0.2,
            freq: FreqClass::VeryHigh,
            lifetime_exposure: 0.5,
            ..ZoneAssumptions::default()
        };
        let dp = a.d_permanent();
        assert!((dp - 0.5 * 0.8 * 0.95).abs() < 1e-12);
        assert!((a.d_transient() - dp * 0.5).abs() < 1e-12);
    }

    #[test]
    fn sil_grant_follows_sff() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        // cover everything very well
        ws.assume_all(|_z, a| {
            a.diagnostics
                .push(DiagnosticClaim::at_max(TechniqueId::RamEcc));
            a.diagnostics
                .push(DiagnosticClaim::at_max(TechniqueId::RedundantComparator));
            a.s_architectural = 0.9;
        });
        let result = ws.compute();
        assert!(result.sff().unwrap() > 0.99);
        assert_eq!(result.sil(), Some(Sil::Sil3));
    }

    #[test]
    fn diagnostic_zones_accumulate_latent_rate() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let base = ws.compute();
        assert_eq!(base.latent, Fit::ZERO, "no diagnostic zones declared");
        let data = zones.zone_by_name("mem/data").unwrap().id;
        ws.assumptions_mut(data).is_diagnostic = true;
        let result = ws.compute();
        let t = &result.zone_totals[data.index()];
        let expected = t.safe + t.dangerous_undetected;
        assert!((result.latent.0 - expected.0).abs() < 1e-12);
        // and the ISO 26262 reading reacts: LFM drops below 1
        let m = result.automotive_metrics().unwrap();
        assert!(m.lfm < 1.0);
        assert!(
            base.automotive_metrics().unwrap().lfm > m.lfm,
            "declaring diagnostics lowers the latent-fault metric"
        );
    }

    #[test]
    fn zone_mode_dc_isolates_one_failure_mode() {
        let zones = demo_zones();
        let mut ws = Worksheet::new(&zones);
        let data = zones.zone_by_name("mem/data").unwrap().id;
        ws.add_diagnostic(
            data,
            DiagnosticClaim::at_max(TechniqueId::RamEcc).for_modes(&["soft_error"]),
        );
        let result = ws.compute();
        let soft = result.zone_mode_dc(data, "soft_error").unwrap();
        let dc_all = result.zone_dc(data).unwrap();
        assert!((soft - 0.99).abs() < 1e-9, "soft_error rows fully covered");
        assert!(dc_all < soft, "other modes dilute the aggregate");
        assert_eq!(result.zone_mode_dc(data, "no_such_mode"), None);
    }

    #[test]
    fn rate_helpers_match_formulas() {
        assert_eq!(sff_from_rates(Fit(1.0), Fit(1.0), Fit(0.0)), Some(1.0));
        assert_eq!(dc_from_rates(Fit(1.0), Fit(1.0)), Some(0.5));
    }
}
