//! Local / wide / global classification of physical fault sites.
//!
//! The paper distinguishes three classes of physical HW faults (§3):
//! *local* faults affect gates contributing to a single sensible zone, *wide*
//! faults affect gates shared between cones (one fault, multiple zone
//! failures — Figure 2), and *global* faults (clock, power, thermal) affect
//! many cones at once. The census below drives validation steps (c) and (d)
//! of §5: local faults are covered by exhaustive zone-failure injection,
//! wide/global faults need selective injection.

use crate::extract::ZoneSet;
use crate::zone::{ZoneId, ZoneKind};
use socfmea_netlist::{GateFan, GateId, Netlist};

/// The paper's three physical-fault classes (plus unassigned logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Gate contributes to no analysed cone.
    Unassigned,
    /// Gate contributes to exactly one zone's cone.
    Local,
    /// Gate shared between two or more cones.
    Wide,
    /// Site on a critical net (clock/reset/power) affecting many cones.
    Global,
}

/// A wide fault site and the zones it can disturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideFaultSite {
    /// The shared gate.
    pub gate: GateId,
    /// Zones whose cones contain the gate.
    pub zones: Vec<ZoneId>,
}

/// Census of fault-site classes over a zoned netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultClassCensus {
    /// Gates in exactly one cone.
    pub local_gates: usize,
    /// Gates shared between cones.
    pub wide_gates: usize,
    /// Gates in no analysed cone.
    pub unassigned_gates: usize,
    /// Global fault sites (critical-net zones).
    pub global_sites: usize,
}

impl FaultClassCensus {
    /// Fraction of zoned gates that are local (the exhaustively-covered
    /// part).
    pub fn local_fraction(&self) -> f64 {
        let zoned = self.local_gates + self.wide_gates;
        if zoned == 0 {
            return 0.0;
        }
        self.local_gates as f64 / zoned as f64
    }
}

/// Classifies one gate.
pub fn classify_gate(zones: &ZoneSet, gate: GateId) -> FaultClass {
    match zones.membership().fan(gate) {
        GateFan::Unassigned => FaultClass::Unassigned,
        GateFan::Local => FaultClass::Local,
        GateFan::Wide => FaultClass::Wide,
    }
}

/// Computes the class census for a zoned netlist.
///
/// # Example
///
/// ```
/// use socfmea_core::extract::{extract_zones, ExtractConfig};
/// use socfmea_core::faultclass::census;
/// use socfmea_rtl::RtlBuilder;
///
/// let mut r = RtlBuilder::new("w");
/// let _clk = r.clock_input("clk");
/// let d = r.input_word("d", 2);
/// let shared = r.not(&d);
/// let a = r.register("a", &shared, None, None);
/// let b = r.register("b", &shared, None, None);
/// r.output_word("qa", &a);
/// r.output_word("qb", &b);
/// let nl = r.finish()?;
/// let zones = extract_zones(&nl, &ExtractConfig::default());
/// let c = census(&nl, &zones);
/// assert_eq!(c.wide_gates, 2);   // the shared inverters
/// assert_eq!(c.global_sites, 1); // the clock
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn census(netlist: &Netlist, zones: &ZoneSet) -> FaultClassCensus {
    let (unassigned, local, wide) = zones.membership().census();
    let _ = netlist;
    let global_sites = zones
        .zones()
        .iter()
        .filter(|z| matches!(z.kind, ZoneKind::CriticalNet { .. }))
        .count();
    FaultClassCensus {
        local_gates: local,
        wide_gates: wide,
        unassigned_gates: unassigned,
        global_sites,
    }
}

/// Lists every wide fault site with the zones it touches, ordered by
/// descending zone count (the most dangerous shared logic first).
pub fn wide_fault_sites(zones: &ZoneSet) -> Vec<WideFaultSite> {
    let mut sites: Vec<WideFaultSite> = zones
        .membership()
        .cone_indices
        .iter()
        .enumerate()
        .filter(|(_, cones)| cones.len() >= 2)
        .map(|(gi, cones)| WideFaultSite {
            gate: GateId::from_index(gi),
            zones: cones.iter().map(|&c| ZoneId::from_index(c)).collect(),
        })
        .collect();
    sites.sort_by(|a, b| b.zones.len().cmp(&a.zones.len()).then(a.gate.cmp(&b.gate)));
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_zones, ExtractConfig};
    use socfmea_rtl::RtlBuilder;

    fn shared_design() -> (socfmea_netlist::Netlist, ZoneSet) {
        let mut r = RtlBuilder::new("w");
        let _clk = r.clock_input("clk");
        let d = r.input_word("d", 2);
        let shared = r.not(&d);
        let private = r.not(&shared);
        let a = r.register("a", &shared, None, None);
        let b = r.register("b", &private, None, None);
        // `shared` inverters feed both a (directly) and b (through private)
        r.output_word("qa", &a);
        r.output_word("qb", &b);
        let nl = r.finish().unwrap();
        let zones = extract_zones(&nl, &ExtractConfig::default());
        (nl, zones)
    }

    #[test]
    fn census_partitions_gates() {
        let (nl, zones) = shared_design();
        let c = census(&nl, &zones);
        assert_eq!(
            c.local_gates + c.wide_gates + c.unassigned_gates,
            nl.gate_count()
        );
        assert!(c.wide_gates >= 2);
        assert!(c.local_fraction() > 0.0 && c.local_fraction() < 1.0);
    }

    #[test]
    fn wide_sites_list_their_zones() {
        let (_nl, zones) = shared_design();
        let sites = wide_fault_sites(&zones);
        assert!(!sites.is_empty());
        for site in &sites {
            assert!(site.zones.len() >= 2);
            assert_eq!(classify_gate(&zones, site.gate), FaultClass::Wide);
        }
    }

    #[test]
    fn empty_census_fraction_is_zero() {
        assert_eq!(FaultClassCensus::default().local_fraction(), 0.0);
    }
}
