//! The divergence-set propagator: simulate only what differs from golden.
//!
//! After an injection, almost every net still carries its golden value —
//! the fault's footprint is a (usually small, often shrinking) set of
//! divergent nets. [`SparseSim`] tracks exactly that set: each cycle it
//! seeds the set from divergent flip-flop state and active fault overrides,
//! then evaluates only the levelized fan-out cone of the set, reading every
//! untouched input straight from the [`GoldenTrace`]. When the set empties
//! and no fault hook remains pending, the faulty run has re-converged with
//! golden and the remaining cycles need no simulation at all.
//!
//! The kernel is exact, not approximate: for every cycle it computes the
//! same visible net values a full lockstep simulation would, which is what
//! lets the campaign layer promise bit-identical outcomes.

use crate::golden::GoldenTrace;
use crate::topo::Topology;
use socfmea_netlist::{DffId, Logic, NetId, Netlist};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Incremental faulty-vs-golden simulation state for one fault at a time.
///
/// Reusable across faults (a campaign worker allocates one and calls
/// [`begin`](Self::begin) per fault); epoch-stamped buffers make the
/// per-fault reset O(1) in the design size.
///
/// Supported fault hooks are the sparse-friendly subset: persistent
/// [`force`](Self::force) (stuck-at), single-cycle [`pulse`](Self::pulse)
/// (glitch) and [`flip_ff`](Self::flip_ff) (SEU). Bridges and clock
/// suppression mutate global evaluation semantics and stay on the
/// full-simulation warm-start path.
#[derive(Debug)]
pub struct SparseSim<'a> {
    netlist: &'a Netlist,
    topo: &'a Topology,
    trace: &'a GoldenTrace,
    /// Cycle currently exposed by [`get`](Self::get) (advanced by `tick`).
    cycle: usize,
    /// Epoch of the current cycle's stamps.
    epoch: u32,
    /// Per-net epoch: a net diverges this cycle iff stamped with `epoch`.
    net_epoch: Vec<u32>,
    /// Faulty value of a net, valid only when `net_epoch` matches.
    faulty: Vec<Logic>,
    /// Per-net epoch marking an active override (force/pulse) this cycle.
    override_epoch: Vec<u32>,
    /// Divergent nets of the current cycle.
    divergent: Vec<NetId>,
    /// Per-gate epoch de-duplicating worklist insertion.
    gate_epoch: Vec<u32>,
    /// Per-flip-flop epoch de-duplicating tick candidates.
    ff_epoch: Vec<u32>,
    /// Level-ordered worklist of woken gates: `(position, gate index)`.
    queue: BinaryHeap<Reverse<(u32, u32)>>,
    /// Persistent forces (stuck-at model).
    forces: Vec<(NetId, Logic)>,
    /// Single-cycle forces, cleared by `tick` (glitch model).
    transients: Vec<(NetId, Logic)>,
    /// Flip-flops whose stored state differs from golden, with the faulty
    /// stored value.
    ff_div: Vec<(DffId, Logic)>,
    /// Scratch for the next `ff_div`.
    ff_next: Vec<(DffId, Logic)>,
    /// Scratch for gate-input values.
    input_buf: Vec<Logic>,
}

impl<'a> SparseSim<'a> {
    /// Allocates a sparse kernel over a design's trace and topology.
    pub fn new(netlist: &'a Netlist, topo: &'a Topology, trace: &'a GoldenTrace) -> SparseSim<'a> {
        SparseSim {
            netlist,
            topo,
            trace,
            cycle: 0,
            epoch: 0,
            net_epoch: vec![0; netlist.net_count()],
            faulty: vec![Logic::X; netlist.net_count()],
            override_epoch: vec![0; netlist.net_count()],
            divergent: Vec::new(),
            gate_epoch: vec![0; netlist.gate_count()],
            ff_epoch: vec![0; netlist.dff_count()],
            queue: BinaryHeap::new(),
            forces: Vec::new(),
            transients: Vec::new(),
            ff_div: Vec::new(),
            ff_next: Vec::new(),
            input_buf: Vec::with_capacity(8),
        }
    }

    /// Resets per-fault state and positions the kernel at `start_cycle`
    /// (the fault's activation cycle): every cycle before it is golden by
    /// construction, so nothing needs simulating there.
    pub fn begin(&mut self, start_cycle: usize) {
        self.cycle = start_cycle;
        self.forces.clear();
        self.transients.clear();
        self.ff_div.clear();
        self.divergent.clear();
        self.queue.clear();
    }

    /// The cycle the kernel currently exposes.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Installs a persistent force (stuck-at) on `net`.
    pub fn force(&mut self, net: NetId, value: Logic) {
        self.forces.push((net, value));
    }

    /// Installs a single-cycle force (glitch) on `net`; expires at the next
    /// [`tick`](Self::tick).
    pub fn pulse(&mut self, net: NetId, value: Logic) {
        self.transients.push((net, value));
    }

    /// Flips the stored state of `dff`, exactly like
    /// [`Simulator::flip_ff`](socfmea_sim::Simulator::flip_ff) at the
    /// current cycle: the golden stored value (which equals the golden `q`
    /// value) is inverted; an `X` state stays `X` and therefore never
    /// diverges.
    pub fn flip_ff(&mut self, dff: DffId) {
        let q = self.netlist.dff(dff).q;
        let golden = self.trace.value(self.cycle, q);
        let flipped = golden.not();
        if flipped != golden {
            self.ff_div.push((dff, flipped));
        }
    }

    /// Evaluates the current cycle: seeds the divergence set from divergent
    /// flip-flop state and active overrides, then propagates it through the
    /// woken part of the combinational network in levelized order.
    ///
    /// Afterwards [`divergent`](Self::divergent) lists every net whose
    /// value differs from the golden trace this cycle, and
    /// [`get`](Self::get) answers the faulty value of any net.
    pub fn eval_cycle(&mut self) {
        let c = self.cycle;
        self.next_epoch();
        self.divergent.clear();
        debug_assert!(self.queue.is_empty());

        // Seeds: divergent stored state surfaces on the q nets…
        for i in 0..self.ff_div.len() {
            let (ff, v) = self.ff_div[i];
            let q = self.netlist.dff(ff).q;
            debug_assert_ne!(v, self.trace.value(c, q));
            self.mark_divergent(q, v);
        }
        // …then overrides stamp their nets (divergent only when the forced
        // value differs from golden this cycle).
        for i in 0..self.forces.len() {
            let (n, v) = self.forces[i];
            self.mark_override(n, v, c);
        }
        for i in 0..self.transients.len() {
            let (n, v) = self.transients[i];
            self.mark_override(n, v, c);
        }

        // Propagate: pop woken gates in evaluation order. A gate's drivers
        // all sit at lower positions, so every divergent input is final by
        // the time the gate pops.
        while let Some(Reverse((_, gi))) = self.queue.pop() {
            let gate = self.netlist.gate(socfmea_netlist::GateId(gi));
            let out = gate.output;
            if self.override_epoch[out.index()] == self.epoch {
                continue; // forced output: the override already decided it
            }
            self.input_buf.clear();
            for &i in &gate.inputs {
                let v = if self.net_epoch[i.index()] == self.epoch {
                    self.faulty[i.index()]
                } else {
                    self.trace.value(c, i)
                };
                self.input_buf.push(v);
            }
            let v = gate.kind.eval(&self.input_buf);
            if v != self.trace.value(c, out) {
                let buf = std::mem::take(&mut self.input_buf);
                self.mark_divergent(out, v);
                self.input_buf = buf;
            }
        }
    }

    /// Nets differing from golden in the current cycle (valid after
    /// [`eval_cycle`](Self::eval_cycle), until [`tick`](Self::tick)).
    pub fn divergent(&self) -> &[NetId] {
        &self.divergent
    }

    /// The faulty value of `net` in the current cycle: the tracked value
    /// when divergent, the golden value otherwise.
    #[inline]
    pub fn get(&self, net: NetId) -> Logic {
        if self.net_epoch[net.index()] == self.epoch {
            self.faulty[net.index()]
        } else {
            self.trace.value(self.cycle, net)
        }
    }

    /// Advances one cycle: flip-flops whose inputs (or stored state) were
    /// touched by the divergence set re-sample, transients expire, and the
    /// kernel moves to the next cycle.
    pub fn tick(&mut self) {
        let c = self.cycle;
        let last = c + 1 >= self.trace.len();
        self.ff_next.clear();

        // Candidates: flip-flops already divergent plus those reading a
        // divergent net through d/enable/reset; everything else re-samples
        // golden values and stays golden by definition.
        let consider = |sim: &mut Self, ff_id: DffId| {
            if sim.ff_epoch[ff_id.index()] == sim.epoch {
                return;
            }
            sim.ff_epoch[ff_id.index()] = sim.epoch;
            let ff = sim.netlist.dff(ff_id);
            // A permanently forced q net hides the stored state completely:
            // the force wins every cycle, so tracking the hidden state would
            // add un-observable divergence the full simulator also ignores.
            if sim.forces.iter().any(|&(n, _)| n == ff.q) {
                return;
            }
            if last {
                return; // no next golden row to diverge against
            }
            let cur = sim
                .ff_div
                .iter()
                .find(|&&(f, _)| f == ff_id)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| sim.trace.value(c, ff.q));
            let rst = ff.reset.map(|r| sim.get_at(r, c));
            let en = ff.enable.map(|e| sim.get_at(e, c));
            let d = sim.get_at(ff.d, c);
            let v = match rst {
                Some(Logic::One) => ff.reset_value,
                Some(Logic::X) | Some(Logic::Z) => Logic::X,
                _ => match en {
                    Some(Logic::Zero) => cur,
                    Some(Logic::One) | None => d,
                    Some(_) => Logic::X,
                },
            };
            if v != sim.trace.value(c + 1, ff.q) {
                sim.ff_next.push((ff_id, v));
            }
        };
        let mut i = 0;
        while i < self.ff_div.len() {
            let ff_id = self.ff_div[i].0;
            consider(self, ff_id);
            i += 1;
        }
        let mut i = 0;
        while i < self.divergent.len() {
            let n = self.divergent[i];
            let mut j = 0;
            while j < self.topo.dff_readers(n.index()).len() {
                let ff_id = self.topo.dff_readers(n.index())[j];
                consider(self, ff_id);
                j += 1;
            }
            i += 1;
        }

        std::mem::swap(&mut self.ff_div, &mut self.ff_next);
        self.transients.clear();
        self.cycle = c + 1;
    }

    /// True when the faulty run has provably re-converged with golden: no
    /// divergent stored state and no fault hook pending. Every remaining
    /// cycle is then cycle-for-cycle identical to the golden trace.
    pub fn converged(&self) -> bool {
        self.ff_div.is_empty() && self.forces.is_empty() && self.transients.is_empty()
    }

    #[inline]
    fn get_at(&self, net: NetId, cycle: usize) -> Logic {
        if self.net_epoch[net.index()] == self.epoch {
            self.faulty[net.index()]
        } else {
            self.trace.value(cycle, net)
        }
    }

    fn mark_divergent(&mut self, net: NetId, value: Logic) {
        let i = net.index();
        if self.net_epoch[i] != self.epoch {
            self.net_epoch[i] = self.epoch;
            self.divergent.push(net);
            for &g in self.topo.gate_readers(i) {
                if self.gate_epoch[g.index()] != self.epoch {
                    self.gate_epoch[g.index()] = self.epoch;
                    self.queue.push(Reverse((self.topo.position(g), g.0)));
                }
            }
        }
        self.faulty[i] = value;
    }

    fn mark_override(&mut self, net: NetId, value: Logic, cycle: usize) {
        self.override_epoch[net.index()] = self.epoch;
        if value != self.trace.value(cycle, net) {
            self.mark_divergent(net, value);
        }
    }

    fn next_epoch(&mut self) {
        match self.epoch.checked_add(1) {
            Some(e) => self.epoch = e,
            None => {
                // One clearing sweep every 2^32 cycles keeps the stamps
                // sound without widening them.
                self.net_epoch.fill(0);
                self.override_epoch.fill(0);
                self.gate_epoch.fill(0);
                self.ff_epoch.fill(0);
                self.epoch = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::{assign_bus, Simulator, Workload};

    /// A small design with reconvergent logic, an enabled register and a
    /// parity checker — enough structure to exercise seeding, fan-out
    /// propagation and the tick rules.
    fn fixture() -> (Netlist, Workload) {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 4);
        let en = r.input_word("en", 1);
        let q = r.register("q", &d, Some(en.bits()[0]), None);
        let p = r.parity(&q);
        let pq = r.register_bit("pq", p, None, None);
        r.output_word("o", &q);
        r.output("alarm_p", pq);
        let nl = r.finish().unwrap();
        let dn: Vec<_> = (0..4)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let enn = nl.net_by_name("en[0]").unwrap();
        let mut w = Workload::new("mix");
        for c in 0..16u64 {
            let mut v = vec![(enn, Logic::from_bool(c % 3 != 0))];
            assign_bus(&mut v, &dn, c.wrapping_mul(7) % 16);
            w.push_cycle(v);
        }
        (nl, w)
    }

    /// Runs one fault through both a full lockstep simulation and the
    /// sparse kernel, asserting every net value matches on every cycle and
    /// that the divergence set is exactly the differing nets.
    fn run_pair(
        nl: &Netlist,
        w: &Workload,
        inject: usize,
        apply_full: impl Fn(&mut Simulator<'_>),
        apply_sparse: impl Fn(&mut SparseSim<'_>),
    ) {
        let trace = GoldenTrace::record(nl, w, 4).unwrap();
        let topo = Topology::build(nl).unwrap();
        let mut full = Simulator::new(nl).unwrap();
        let mut sparse = SparseSim::new(nl, &topo, &trace);
        sparse.begin(inject);
        let mut converged_at: Option<usize> = None;
        for (c, inputs) in w.iter().enumerate() {
            for &(n, v) in inputs {
                full.set(n, v);
            }
            if c == inject {
                apply_full(&mut full);
                apply_sparse(&mut sparse);
            }
            full.eval();
            if c >= inject {
                match converged_at {
                    Some(conv) => {
                        for ni in 0..nl.net_count() {
                            let n = NetId::from_index(ni);
                            assert_eq!(
                                full.get(n),
                                trace.value(c, n),
                                "cycle {c}: full sim left golden after convergence at {conv}"
                            );
                        }
                    }
                    None => {
                        sparse.eval_cycle();
                        for ni in 0..nl.net_count() {
                            let n = NetId::from_index(ni);
                            assert_eq!(
                                sparse.get(n),
                                full.get(n),
                                "cycle {c} net {} diverges between sparse and full",
                                nl.net(n).name
                            );
                        }
                        // the divergent list must be exactly the differing nets
                        for ni in 0..nl.net_count() {
                            let n = NetId::from_index(ni);
                            let differs = full.get(n) != trace.value(c, n);
                            assert_eq!(
                                sparse.divergent().contains(&n),
                                differs,
                                "cycle {c} net {}: divergence set wrong",
                                nl.net(n).name
                            );
                        }
                        sparse.tick();
                        if sparse.converged() {
                            converged_at = Some(c);
                        }
                    }
                }
            }
            full.tick();
        }
    }

    #[test]
    fn bitflip_matches_full_simulation_and_converges() {
        let (nl, w) = fixture();
        for inject in [0, 3, 7] {
            run_pair(
                &nl,
                &w,
                inject,
                |full| full.flip_ff(DffId(0)),
                |sparse| sparse.flip_ff(DffId(0)),
            );
        }
    }

    #[test]
    fn stuck_at_matches_full_simulation_forever() {
        let (nl, w) = fixture();
        let target = nl.net_by_name("q[1]").unwrap();
        for value in [Logic::Zero, Logic::One] {
            run_pair(
                &nl,
                &w,
                2,
                |full| full.force(target, value),
                |sparse| sparse.force(target, value),
            );
        }
    }

    #[test]
    fn stuck_at_on_gate_output_and_input_nets() {
        let (nl, w) = fixture();
        for name in ["d[2]", "alarm_p"] {
            let target = nl.net_by_name(name).unwrap();
            run_pair(
                &nl,
                &w,
                1,
                |full| full.force(target, Logic::One),
                |sparse| sparse.force(target, Logic::One),
            );
        }
    }

    #[test]
    fn glitch_matches_and_expires() {
        let (nl, w) = fixture();
        let target = nl.net_by_name("q[0]").unwrap();
        for inject in [0, 5, 9] {
            run_pair(
                &nl,
                &w,
                inject,
                |full| full.pulse(target, Logic::One),
                |sparse| sparse.pulse(target, Logic::One),
            );
        }
    }

    #[test]
    fn glitch_equal_to_golden_never_diverges() {
        let (nl, w) = fixture();
        let trace = GoldenTrace::record(&nl, &w, 4).unwrap();
        let topo = Topology::build(&nl).unwrap();
        let target = nl.net_by_name("q[3]").unwrap();
        let golden = trace.value(5, target);
        let mut sparse = SparseSim::new(&nl, &topo, &trace);
        sparse.begin(5);
        sparse.pulse(target, golden);
        sparse.eval_cycle();
        assert!(sparse.divergent().is_empty());
        sparse.tick();
        assert!(sparse.converged());
    }

    #[test]
    fn kernel_is_reusable_across_faults() {
        let (nl, w) = fixture();
        let trace = GoldenTrace::record(&nl, &w, 4).unwrap();
        let topo = Topology::build(&nl).unwrap();
        let mut sparse = SparseSim::new(&nl, &topo, &trace);
        // first fault: persistent stuck-at (never converges)
        sparse.begin(1);
        sparse.force(nl.net_by_name("q[0]").unwrap(), Logic::One);
        for _ in 1..w.len() {
            sparse.eval_cycle();
            sparse.tick();
        }
        assert!(!sparse.converged());
        // second fault on the same kernel: must start clean
        sparse.begin(3);
        assert!(sparse.converged(), "begin() must clear fault state");
        sparse.flip_ff(DffId(1));
        sparse.eval_cycle();
        let n_div = sparse.divergent().len();
        assert!(n_div > 0, "flip must seed the divergence set");
    }
}
