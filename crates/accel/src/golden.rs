//! The golden-trace recorder: one fault-free run per environment, archived
//! as a full per-cycle value matrix plus periodic full-state checkpoints.
//!
//! The matrix is what the divergence-set propagator reads *through*: a
//! faulty simulation only stores the nets that differ from golden, and every
//! other net's value is answered from here in O(1). The checkpoints are what
//! the warm-start injector restores: a fault activating at cycle `c` resumes
//! from the nearest checkpoint at or before `c` instead of re-simulating
//! from power-on.

use socfmea_netlist::{LevelizeError, Logic, NetId, Netlist};
use socfmea_sim::{SimSnapshot, Simulator, Workload};

/// The archived fault-free reference run: post-[`eval`] values of **every**
/// net at **every** workload cycle, plus [`SimSnapshot`] checkpoints taken
/// every `interval` cycles.
///
/// Checkpoint timing convention: the checkpoint for cycle `c` is captured at
/// the *start* of cycle `c`, before that cycle's stimulus is applied — so
/// restoring it and replaying the workload from cycle `c` reproduces the
/// golden run exactly.
///
/// [`eval`]: Simulator::eval
#[derive(Debug, Clone)]
pub struct GoldenTrace {
    cycles: usize,
    nets: usize,
    /// Row-major `[cycle][net]` values.
    matrix: Vec<Logic>,
    /// Snapshots at cycles `0, interval, 2*interval, …`.
    checkpoints: Vec<SimSnapshot>,
    interval: usize,
}

impl GoldenTrace {
    /// Runs `workload` fault-free over `netlist` and records the trace,
    /// checkpointing every `interval` cycles (`0` is treated as `1`).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the netlist contains a combinational
    /// cycle.
    pub fn record(
        netlist: &Netlist,
        workload: &Workload,
        interval: usize,
    ) -> Result<GoldenTrace, LevelizeError> {
        let mut sim = Simulator::new(netlist)?;
        Ok(Self::record_with(&mut sim, workload, interval))
    }

    /// Like [`record`](Self::record), but reuses an existing simulator
    /// (reset to power-on first), so callers that already paid the
    /// levelization keep it.
    pub fn record_with(
        sim: &mut Simulator<'_>,
        workload: &Workload,
        interval: usize,
    ) -> GoldenTrace {
        let interval = interval.max(1);
        let nets = sim.netlist().net_count();
        let cycles = workload.len();
        sim.reset_to_power_on();
        let mut trace = GoldenTrace {
            cycles,
            nets,
            matrix: Vec::with_capacity(cycles * nets),
            checkpoints: Vec::with_capacity(cycles / interval + 1),
            interval,
        };
        // Same cycle discipline as `Workload::run`: inputs, eval, observe,
        // tick — the matrix rows are exactly what a lockstep golden
        // simulation would expose to the campaign monitors.
        for (c, inputs) in workload.iter().enumerate() {
            if c % interval == 0 {
                trace.checkpoints.push(sim.snapshot());
            }
            for &(n, v) in inputs {
                sim.set(n, v);
            }
            sim.eval();
            trace.matrix.extend_from_slice(sim.values());
            sim.tick();
        }
        trace
    }

    /// The golden value of `net` at `cycle` (post-eval).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    #[inline]
    pub fn value(&self, cycle: usize, net: NetId) -> Logic {
        self.matrix[cycle * self.nets + net.index()]
    }

    /// All net values of one cycle (indexed by [`NetId::index`]).
    #[inline]
    pub fn row(&self, cycle: usize) -> &[Logic] {
        &self.matrix[cycle * self.nets..(cycle + 1) * self.nets]
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles
    }

    /// True when the workload had no cycles.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// The checkpoint interval the trace was recorded with.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Number of stored checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// The nearest checkpoint at or before `cycle`; `None` only when the
    /// trace is empty.
    pub fn checkpoint_at_or_before(&self, cycle: usize) -> Option<&SimSnapshot> {
        let idx = (cycle / self.interval).min(self.checkpoints.len().checked_sub(1)?);
        Some(&self.checkpoints[idx])
    }

    /// Total heap footprint of the checkpoint store, in bytes (the quantity
    /// the checkpoint interval trades against warm-start distance).
    pub fn checkpoint_bytes(&self) -> usize {
        self.checkpoints.iter().map(SimSnapshot::memory_bytes).sum()
    }

    /// Heap footprint of the per-cycle value matrix, in bytes.
    pub fn matrix_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<Logic>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_rtl::RtlBuilder;
    use socfmea_sim::assign_bus;

    fn fixture() -> (Netlist, Workload) {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 4);
        let q = r.register("q", &d, None, None);
        r.output_word("o", &q);
        let nl = r.finish().unwrap();
        let dn: Vec<_> = (0..4)
            .map(|i| nl.net_by_name(&format!("d[{i}]")).unwrap())
            .collect();
        let mut w = Workload::new("count");
        for c in 0..10 {
            let mut v = Vec::new();
            assign_bus(&mut v, &dn, c);
            w.push_cycle(v);
        }
        (nl, w)
    }

    #[test]
    fn matrix_matches_a_plain_simulation() {
        let (nl, w) = fixture();
        let trace = GoldenTrace::record(&nl, &w, 4).unwrap();
        assert_eq!(trace.len(), 10);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut cycle = 0usize;
        w.run(&mut sim, |_, s| {
            assert_eq!(trace.row(cycle), s.values(), "cycle {cycle}");
            cycle += 1;
        });
    }

    #[test]
    fn checkpoints_replay_to_the_same_trace() {
        let (nl, w) = fixture();
        let trace = GoldenTrace::record(&nl, &w, 3).unwrap();
        assert_eq!(trace.checkpoint_count(), 4); // cycles 0, 3, 6, 9
        let mut sim = Simulator::new(&nl).unwrap();
        for start in 0..w.len() {
            let cp = trace.checkpoint_at_or_before(start).unwrap();
            assert!(cp.cycle() as usize <= start);
            assert!(start - cp.cycle() as usize <= 3);
            sim.restore(cp);
            for (c, inputs) in w.iter().enumerate().skip(cp.cycle() as usize) {
                for &(n, v) in inputs {
                    sim.set(n, v);
                }
                sim.eval();
                assert_eq!(sim.values(), trace.row(c), "replay from {start} at {c}");
                sim.tick();
                if c >= start {
                    break;
                }
            }
        }
    }

    #[test]
    fn interval_one_checkpoints_every_cycle_and_zero_is_clamped() {
        let (nl, w) = fixture();
        let every = GoldenTrace::record(&nl, &w, 1).unwrap();
        assert_eq!(every.checkpoint_count(), 10);
        let clamped = GoldenTrace::record(&nl, &w, 0).unwrap();
        assert_eq!(clamped.checkpoint_count(), 10);
        assert!(every.checkpoint_bytes() > 0);
        assert!(every.matrix_bytes() >= 10 * nl.net_count());
    }

    #[test]
    fn empty_workload_yields_an_empty_trace() {
        let (nl, _) = fixture();
        let w = Workload::new("idle");
        let trace = GoldenTrace::record(&nl, &w, 8).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.checkpoint_count(), 0);
        assert!(trace.checkpoint_at_or_before(0).is_none());
    }
}
