//! Static propagation structure for the divergence-set kernel: the
//! levelized gate order plus per-net fan-out adjacency.
//!
//! Computed once per campaign and shared read-only by all workers; the
//! sparse kernel needs it to (a) wake exactly the gates reading a divergent
//! net and (b) pop woken gates in dependency order.

use socfmea_netlist::{levelize, DffId, GateId, LevelizeError, Netlist};

/// Per-netlist propagation structure: the same topological gate order a
/// [`Simulator`](socfmea_sim::Simulator) evaluates in, inverted into
/// reader lists so a change on one net wakes only its fan-out.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Position of each gate (by [`GateId::index`]) in the levelized order.
    pos: Vec<u32>,
    /// Gates reading each net (by [`NetId::index`]).
    gate_readers: Vec<Vec<GateId>>,
    /// Flip-flops reading each net through `d`/`enable`/`reset`.
    dff_readers: Vec<Vec<DffId>>,
}

impl Topology {
    /// Builds the propagation structure for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the netlist contains a combinational
    /// cycle (the same condition that makes it unsimulatable).
    pub fn build(netlist: &Netlist) -> Result<Topology, LevelizeError> {
        let order = levelize(netlist)?;
        let mut pos = vec![0u32; netlist.gate_count()];
        for (p, g) in order.iter().enumerate() {
            pos[g.index()] = p as u32;
        }
        Ok(Topology {
            pos,
            gate_readers: netlist.gate_fanout(),
            dff_readers: netlist.dff_fanout(),
        })
    }

    /// The position of `gate` in the levelized evaluation order.
    #[inline]
    pub fn position(&self, gate: GateId) -> u32 {
        self.pos[gate.index()]
    }

    /// Gates whose inputs include the net with index `net_index`.
    #[inline]
    pub fn gate_readers(&self, net_index: usize) -> &[GateId] {
        &self.gate_readers[net_index]
    }

    /// Flip-flops reading the net with index `net_index` (via `d`, `enable`
    /// or `reset`).
    #[inline]
    pub fn dff_readers(&self, net_index: usize) -> &[DffId] {
        &self.dff_readers[net_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_rtl::RtlBuilder;

    #[test]
    fn readers_agree_with_gate_inputs_and_order_is_topological() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output_word("o", &q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let topo = Topology::build(&nl).unwrap();
        for (gi, gate) in nl.gates().iter().enumerate() {
            let g = GateId::from_index(gi);
            for &i in &gate.inputs {
                assert!(topo.gate_readers(i.index()).contains(&g));
                // a reader always evaluates after the gate driving its input
                if let socfmea_netlist::Driver::Gate(drv) = nl.net(i).driver {
                    assert!(topo.position(drv) < topo.position(g));
                }
            }
        }
        for (fi, ff) in nl.dffs().iter().enumerate() {
            let id = DffId::from_index(fi);
            assert!(topo.dff_readers(ff.d.index()).contains(&id));
        }
    }
}
