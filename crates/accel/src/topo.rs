//! Static propagation structure for the divergence-set kernel: the
//! levelized gate order plus per-net fan-out adjacency.
//!
//! Computed once per campaign and shared read-only by all workers; the
//! sparse kernel needs it to (a) wake exactly the gates reading a divergent
//! net and (b) pop woken gates in dependency order.

use socfmea_netlist::{levelize, DffId, GateId, LevelizeError, NetId, Netlist};

/// Per-netlist propagation structure: the same topological gate order a
/// [`Simulator`](socfmea_sim::Simulator) evaluates in, inverted into
/// reader lists so a change on one net wakes only its fan-out.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The levelized gate evaluation order itself.
    order: Vec<GateId>,
    /// Position of each gate (by [`GateId::index`]) in the levelized order.
    pos: Vec<u32>,
    /// Gates reading each net (by [`NetId::index`]).
    gate_readers: Vec<Vec<GateId>>,
    /// Flip-flops reading each net through `d`/`enable`/`reset`.
    dff_readers: Vec<Vec<DffId>>,
    /// Output net of each gate (by [`GateId::index`]).
    gate_out: Vec<NetId>,
    /// `q` net of each flip-flop (by [`DffId::index`]).
    dff_q: Vec<NetId>,
}

impl Topology {
    /// Builds the propagation structure for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the netlist contains a combinational
    /// cycle (the same condition that makes it unsimulatable).
    pub fn build(netlist: &Netlist) -> Result<Topology, LevelizeError> {
        let order = levelize(netlist)?;
        let mut pos = vec![0u32; netlist.gate_count()];
        for (p, g) in order.iter().enumerate() {
            pos[g.index()] = p as u32;
        }
        Ok(Topology {
            order,
            pos,
            gate_readers: netlist.gate_fanout(),
            dff_readers: netlist.dff_fanout(),
            gate_out: netlist.gates().iter().map(|g| g.output).collect(),
            dff_q: netlist.dffs().iter().map(|ff| ff.q).collect(),
        })
    }

    /// The levelized gate evaluation order (every gate exactly once, each
    /// after all gates driving its inputs).
    #[inline]
    pub fn levels(&self) -> &[GateId] {
        &self.order
    }

    /// Per-net reachability flags for the forward structural fan-out cone
    /// of `net`: `true` for every net (including `net` itself) reachable
    /// from it through gate evaluation *and* flip-flop state transfer
    /// (`d`/`enable`/`reset` → `q`). This is the set of nets a value
    /// change on `net` could ever influence, across any number of cycles.
    pub fn fanout_cone(&self, net: NetId) -> Vec<bool> {
        let mut reach = vec![false; self.gate_readers.len()];
        let mut stack = vec![net];
        reach[net.index()] = true;
        while let Some(n) = stack.pop() {
            for &g in &self.gate_readers[n.index()] {
                let out = self.gate_out[g.index()];
                if !reach[out.index()] {
                    reach[out.index()] = true;
                    stack.push(out);
                }
            }
            for &ff in &self.dff_readers[n.index()] {
                let q = self.dff_q[ff.index()];
                if !reach[q.index()] {
                    reach[q.index()] = true;
                    stack.push(q);
                }
            }
        }
        reach
    }

    /// The position of `gate` in the levelized evaluation order.
    #[inline]
    pub fn position(&self, gate: GateId) -> u32 {
        self.pos[gate.index()]
    }

    /// Gates whose inputs include the net with index `net_index`.
    #[inline]
    pub fn gate_readers(&self, net_index: usize) -> &[GateId] {
        &self.gate_readers[net_index]
    }

    /// Flip-flops reading the net with index `net_index` (via `d`, `enable`
    /// or `reset`).
    #[inline]
    pub fn dff_readers(&self, net_index: usize) -> &[DffId] {
        &self.dff_readers[net_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socfmea_rtl::RtlBuilder;

    #[test]
    fn readers_agree_with_gate_inputs_and_order_is_topological() {
        let mut r = RtlBuilder::new("d");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output_word("o", &q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let topo = Topology::build(&nl).unwrap();
        for (gi, gate) in nl.gates().iter().enumerate() {
            let g = GateId::from_index(gi);
            for &i in &gate.inputs {
                assert!(topo.gate_readers(i.index()).contains(&g));
                // a reader always evaluates after the gate driving its input
                if let socfmea_netlist::Driver::Gate(drv) = nl.net(i).driver {
                    assert!(topo.position(drv) < topo.position(g));
                }
            }
        }
        for (fi, ff) in nl.dffs().iter().enumerate() {
            let id = DffId::from_index(fi);
            assert!(topo.dff_readers(ff.d.index()).contains(&id));
        }
    }

    #[test]
    fn levels_cover_every_gate_in_dependency_order() {
        let mut r = RtlBuilder::new("lv");
        let d = r.input_word("d", 3);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let topo = Topology::build(&nl).unwrap();
        assert_eq!(topo.levels().len(), nl.gate_count());
        for (p, &g) in topo.levels().iter().enumerate() {
            assert_eq!(topo.position(g) as usize, p);
        }
    }

    #[test]
    fn fanout_cone_crosses_dff_boundaries_and_stays_forward() {
        let mut r = RtlBuilder::new("fc");
        let d = r.input_word("d", 2);
        let q = r.register("q", &d, None, None);
        let p = r.parity(&q);
        r.output_word("o", &q);
        r.output("flag", p);
        let nl = r.finish().unwrap();
        let topo = Topology::build(&nl).unwrap();
        let d0 = nl.net_by_name("d[0]").unwrap();
        let d1 = nl.net_by_name("d[1]").unwrap();
        let cone = topo.fanout_cone(d0);
        assert!(cone[d0.index()], "a net is in its own cone");
        // d[0] reaches q[0] through the register and the parity flag past it
        assert!(cone[nl.net_by_name("q[0]").unwrap().index()]);
        assert!(cone[nl.net_by_name("flag").unwrap().index()]);
        // but never its sibling input
        assert!(!cone[d1.index()]);
        // and the flag output's cone is only itself (nothing reads it)
        let flag = nl.net_by_name("flag").unwrap();
        let fcone = topo.fanout_cone(flag);
        assert_eq!(fcone.iter().filter(|&&b| b).count(), 1);
    }
}
