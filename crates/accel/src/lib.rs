//! Checkpointed incremental fault simulation for the SoC-FMEA flow.
//!
//! A fault-injection campaign re-simulates the same workload thousands of
//! times, and almost all of that work is redundant: before a fault
//! activates, the faulty run *is* the golden run, and after a transient
//! fault washes out it is the golden run again. This crate removes the
//! redundancy in three layers, each exact (never approximate), so the
//! campaign engine can promise bit-identical outcomes to full lockstep
//! simulation:
//!
//! 1. **[`GoldenTrace`]** — one fault-free recording per environment: the
//!    post-eval value of every net at every cycle, plus full-state
//!    [`SimSnapshot`](socfmea_sim::SimSnapshot) checkpoints at a
//!    configurable interval.
//! 2. **Warm start** — a fault activating at cycle `c` resumes from the
//!    nearest checkpoint at or before `c`
//!    ([`GoldenTrace::checkpoint_at_or_before`]) instead of re-simulating
//!    from power-on; sparse-friendly faults skip the warm-up entirely and
//!    start *at* `c`, because everything before the activation cycle is
//!    golden by construction.
//! 3. **[`SparseSim`]** — the divergence-set propagator: each cycle it
//!    evaluates only the levelized fan-out cone of the nets that differ
//!    from golden (via the shared [`Topology`]), reads every untouched
//!    value from the trace, and declares **convergence** the moment no
//!    divergent flip-flop state and no fault hook remains — the rest of the
//!    run is then classified straight from the golden trace.
//!
//! The campaign integration lives in `socfmea-faultsim` (opt in with
//! `Campaign::accelerated(true)`); this crate holds the engine itself and
//! knows nothing about faults models beyond force/pulse/flip hooks.

pub mod golden;
pub mod sparse;
pub mod topo;

pub use golden::GoldenTrace;
pub use sparse::SparseSim;
pub use topo::Topology;
