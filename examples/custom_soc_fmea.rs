//! FMEA of a user-provided design imported from structural Verilog.
//!
//! Shows the import path: a post-synthesis netlist in the supported
//! Verilog subset is parsed, zoned, classified, covered with diagnostic
//! claims and swept through the sensitivity analysis — no Rust design
//! description needed.
//!
//! Run with `cargo run --example custom_soc_fmea`.

use soc_fmea::fmea::{sweep, SensitivitySpec};
use soc_fmea::prelude::*;

/// A tiny post-synthesis netlist: a duplicated (lockstep) accumulator bit
/// with a comparator alarm.
const DESIGN: &str = "
    module lockstep_acc(clk, rst, en, din, q, alarm);
    input clk, rst, en, din;
    output q;
    output alarm;
    wire d_a; wire d_b; wire q_a; wire q_b;
    xor g0 (d_a, q_a, din);
    xor g1 (d_b, q_b, din);
    dffre r0 (q_a, d_a, en, rst);
    dffre r1 (q_b, d_b, en, rst);
    buf g2 (q, q_a);
    xor g3 (alarm, q_a, q_b);
    endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = parse_verilog(DESIGN)?;
    println!(
        "imported `{}`: {} gates, {} flip-flops, {} inputs, {} outputs",
        netlist.name(),
        netlist.gate_count(),
        netlist.dff_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );

    // zone the design; the accumulators are processing-unit state
    let config = ExtractConfig::default().classify("", ComponentClass::ProcessingUnit);
    let zones = extract_zones(&netlist, &config);
    println!("\nsensible zones:");
    for z in zones.zones() {
        println!("  {z}");
    }

    // the duplicated register + XOR comparator is a lockstep scheme: claim
    // the Annex A "duplicated logic with hardware comparator" credit
    let mut ws = Worksheet::new(&zones);
    for name in ["q_a", "q_b"] {
        if let Some(z) = zones.zone_by_name(name) {
            ws.add_diagnostic(
                z.id,
                DiagnosticClaim::at_max(TechniqueId::RedundantComparator),
            );
        }
    }
    let result = ws.compute();
    println!("\n{}", report::render_text(&result, &zones));

    // sensitivity: does the verdict survive pessimistic assumptions?
    let sens = sweep(&ws, &SensitivitySpec::default());
    println!(
        "sensitivity over {} grid points: SFF in [{:.2}%, {:.2}%], excursion {:.2} points",
        sens.samples.len(),
        sens.min_sff().unwrap_or(f64::NAN) * 100.0,
        sens.max_sff().unwrap_or(f64::NAN) * 100.0,
        sens.excursion().unwrap_or(f64::NAN) * 100.0
    );
    Ok(())
}
