//! A fault-injection campaign from scratch on a parity-protected register
//! file: build, zone, profile, generate the fault list, inject, and read
//! the SENS/OBSE/DIAG coverage items.
//!
//! Run with `cargo run --release --example fault_injection_campaign`.

use soc_fmea::faultsim::{fault_universe, ppsfp_coverage};
use soc_fmea::prelude::*;
use soc_fmea::rtl::Word;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a register file of four 8-bit entries, each with a stored parity bit
    // checked at readout
    let mut r = RtlBuilder::new("regfile");
    let _clk = r.clock_input("clk");
    let din = r.input_word("din", 8);
    let wsel = r.input_word("wsel", 2);
    let rsel = r.input_word("rsel", 2);
    let we = r.input("we");
    let hot = r.decoder(&wsel);
    let mut qs = Vec::new();
    let mut ps = Vec::new();
    for i in 0..4 {
        r.push_block(format!("entry{i}"));
        let en = r.and2_bit(we, hot.bit(i));
        let q = r.register(&format!("data{i}"), &din, Some(en), None);
        let par_in = r.parity(&din);
        let p = r.register_bit(&format!("par{i}"), par_in, Some(en), None);
        qs.push(q);
        ps.push(p);
        r.pop_block();
    }
    let rdata = r.mux_tree(&rsel, &qs);
    let rpar = {
        let pw: Word = ps.iter().copied().collect();
        let bits: Vec<_> = pw.bits().to_vec();
        let items: Vec<Word> = bits.iter().map(|&b| Word::new(vec![b])).collect();
        r.mux_tree(&rsel, &items).bit(0)
    };
    let live_par = r.parity(&rdata);
    let alarm = r.xor2_bit(live_par, rpar);
    r.output_word("rdata", &rdata);
    r.output("alarm_parity", alarm);
    let netlist = r.finish()?;

    // a write/read-sweep workload
    let mut w = Workload::new("sweep");
    let pin = |n: &str| netlist.net_by_name(n).expect("pin");
    let din_nets: Vec<_> = (0..8).map(|i| pin(&format!("din[{i}]"))).collect();
    let wsel_nets: Vec<_> = (0..2).map(|i| pin(&format!("wsel[{i}]"))).collect();
    let rsel_nets: Vec<_> = (0..2).map(|i| pin(&format!("rsel[{i}]"))).collect();
    let we = pin("we");
    for round in 0..3u64 {
        for e in 0..4u64 {
            let mut c = vec![(we, Logic::One)];
            assign_bus(&mut c, &din_nets, 0x35u64.wrapping_mul(e + 1 + round * 7));
            assign_bus(&mut c, &wsel_nets, e);
            assign_bus(&mut c, &rsel_nets, e);
            w.push_cycle(c);
            let mut c = vec![(we, Logic::Zero)];
            assign_bus(&mut c, &rsel_nets, e);
            w.push_cycle(c);
            w.push_idle(1);
        }
    }

    // zone, profile, generate and run the campaign
    let zones = extract_zones(&netlist, &ExtractConfig::default());
    let env = EnvironmentBuilder::new(&netlist, &zones, &w)
        .alarms_matching("alarm_")
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(&env, &profile, &FaultListConfig::default());
    println!(
        "{} zones, {} faults, workload {} cycles",
        zones.len(),
        faults.len(),
        w.len()
    );
    // shard across two worker threads; the merge is deterministic and
    // every engine is bit-identical, so the result equals
    // `run_campaign(&env, &faults)` — `Engine::Auto` just picks the
    // fastest strategy the fault list admits
    let runner = Campaign::new(&env, &faults).engine(Engine::Auto).threads(2);
    let stats = runner.stats();
    let campaign = runner.run();
    println!("{}", stats.summary());
    let (ne, sd, dd, du) = campaign.outcome_counts();
    println!("outcomes: {ne} no-effect, {sd} safe-detected, {dd} dangerous-detected, {du} dangerous-undetected");
    println!("{}", campaign.coverage);

    let analysis = analyze(&faults, &campaign, &profile);
    println!("table of effects (zone -> observation points):");
    for (zone, effects) in &analysis.table_of_effects {
        let names: Vec<_> = effects
            .iter()
            .map(|&z| zones.zone(z).name.clone())
            .collect();
        println!("  {:<18} -> {}", zones.zone(*zone).name, names.join(", "));
    }

    // and the permanent-fault coverage of the workload (PPSFP)
    let report = ppsfp_coverage(&netlist, &w, netlist.outputs(), &fault_universe(&netlist));
    println!(
        "stuck-at coverage of the sweep workload: {:.1}% raw, {:.1}% of excited",
        report.coverage() * 100.0,
        report.coverage_of_excited() * 100.0
    );
    Ok(())
}
