//! The paper's §6 story end-to-end: assess the baseline memory sub-system,
//! read the criticality ranking, apply the five hardening measures, and
//! show the hardened design clearing the SIL3 bar — then validate the
//! hardened FMEA by fault injection.
//!
//! Run with `cargo run --release --example memsys_certification`
//! (release recommended: the validation campaign simulates hundreds of
//! faulty design copies).

use soc_fmea::memsys::{certification_workload, config::MemSysConfig, fmea, rtl, MemSysPins};
use soc_fmea::prelude::*;

fn assess(name: &str, cfg: &MemSysConfig) -> Result<f64, Box<dyn std::error::Error>> {
    let netlist = rtl::build_netlist(cfg)?;
    let zones = extract_zones(&netlist, &fmea::extract_config());
    let ws = fmea::build_worksheet(&zones, cfg);
    let result = ws.compute();
    let sff = result.sff().expect("nonzero rates");
    println!("==== {name} ====");
    println!(
        "{} gates, {} FFs, {} zones  ->  SFF {:.2}%, SIL @HFT=0: {}",
        netlist.gate_count(),
        netlist.dff_count(),
        zones.len(),
        sff * 100.0,
        sil_from_sff(sff, Hft(0), SubsystemType::B)
            .map(|s| s.to_string())
            .unwrap_or_else(|| "none".into())
    );
    println!(
        "most critical zones:\n{}",
        report::render_ranking(&result, &zones, 5)
    );
    Ok(sff)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. first implementation: SEC-DED only — not SIL3
    let baseline = MemSysConfig::baseline();
    let sff_base = assess("baseline (first implementation)", &baseline)?;

    // 2. the five measures of the paper's second implementation
    let hardened = MemSysConfig::hardened();
    let sff_hard = assess("hardened (second implementation)", &hardened)?;
    println!(
        "SFF improvement: {:.2}% -> {:.2}% (paper: ~95% -> 99.38%)\n",
        sff_base * 100.0,
        sff_hard * 100.0
    );

    // 3. validate the hardened FMEA by fault injection (§5); a smaller
    // array keeps the campaign quick without changing the architecture
    let hardened = MemSysConfig::hardened().with_words(16);
    let netlist = rtl::build_netlist(&hardened)?;
    let zones = extract_zones(&netlist, &fmea::extract_config());
    let pins = MemSysPins::find(&netlist, &hardened);
    let cert = certification_workload(&pins, &hardened);
    let env = EnvironmentBuilder::new(&netlist, &zones, &cert.workload)
        .alarms_matching("alarm_")
        .sw_test_window(cert.sw_test_window)
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(
        &env,
        &profile,
        &FaultListConfig {
            bitflips_per_zone: 8,
            seed: 2007,
            ..FaultListConfig::default()
        },
    );
    println!(
        "running the injection campaign: {} faults over {} cycles...",
        faults.len(),
        cert.workload.len()
    );
    let campaign = run_campaign(&env, &faults);
    let analysis = analyze(&faults, &campaign, &profile);
    let graph = ZoneGraph::build(&netlist, &zones);
    let effects = predict_all_effects(&graph);
    let ws = fmea::build_worksheet(&zones, &hardened);
    let verdict = validate(
        &ws.compute(),
        &effects,
        &analysis.measured,
        ValidationConfig {
            ddf_tolerance: 0.25,
            ..ValidationConfig::default()
        },
    );
    println!("{}", campaign.coverage);
    println!(
        "validation: {} ({} zones cross-checked)",
        if verdict.passed() {
            "SUCCESSFUL"
        } else {
            "DEVIATIONS FOUND"
        },
        verdict.zones.len()
    );
    for f in verdict.failures() {
        println!(
        "  deviation at {}: estimated DDF {:?} vs measured {:?} over {} injections          -> the FMEA gets a new line (the paper's update loop)",
            zones.zone(f.zone).name,
            f.estimated_ddf.map(|v| (v * 100.0).round()),
            f.measured_ddf.map(|v| (v * 100.0).round()),
            f.injections
        );
    }
    Ok(())
}
