//! Quickstart: FMEA of a small protected datapath in ~60 lines.
//!
//! Builds a register file with an unprotected twin, extracts sensible
//! zones, claims ECC coverage for the protected half, and prints the
//! worksheet — showing how the Safe Failure Fraction reacts to diagnostics.
//!
//! Run with `cargo run --example quickstart`.

use soc_fmea::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. describe the design (or parse structural Verilog instead) -----
    let mut r = RtlBuilder::new("quickstart");
    let _clk = r.clock_input("clk");
    let din = r.input_word("din", 16);

    r.push_block("protected");
    let safe_q = r.register("bank_ecc", &din, None, None);
    r.pop_block();

    r.push_block("plain");
    let plain_q = r.register("bank_plain", &din, None, None);
    r.pop_block();

    let merged = r.xor(&safe_q, &plain_q);
    r.output_word("dout", &merged);
    let netlist = r.finish()?;
    println!(
        "design: {} gates, {} flip-flops",
        netlist.gate_count(),
        netlist.dff_count()
    );

    // -- 2. extract sensible zones ----------------------------------------
    let config = ExtractConfig::default()
        .classify("protected", ComponentClass::VariableMemory)
        .classify("plain", ComponentClass::VariableMemory);
    let zones = extract_zones(&netlist, &config);
    println!("sensible zones: {}", zones.len());
    for z in zones.zones() {
        println!("  {z}");
    }

    // -- 3. the FMEA worksheet: claim ECC on the protected bank only ------
    let mut ws = Worksheet::new(&zones);
    let bank = zones
        .zone_by_name("protected/bank_ecc")
        .expect("zone exists")
        .id;
    ws.add_diagnostic(bank, DiagnosticClaim::at_max(TechniqueId::RamEcc));

    // -- 4. compute SFF / DC / SIL ----------------------------------------
    let result = ws.compute();
    println!("\n{}", report::render_text(&result, &zones));
    println!(
        "the unprotected bank dominates the ranking; protecting it too would \
         lift the SFF toward the SIL3 bar (99%)"
    );
    Ok(())
}
