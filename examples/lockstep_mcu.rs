//! The fault-robust microcontroller end to end: run a program on the
//! lockstep CPU, inject a soft error mid-flight, watch the comparator
//! catch it — and dump the whole episode as a VCD waveform.
//!
//! Run with `cargo run --release --example lockstep_mcu`
//! (writes `lockstep_mcu.vcd` into the working directory).

use soc_fmea::mcu::rtl::run_workload;
use soc_fmea::mcu::{build_mcu, fmea, programs, McuConfig, McuPins};
use soc_fmea::netlist::Driver;
use soc_fmea::prelude::*;
use soc_fmea::sim::VcdWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = McuConfig::lockstep(programs::checksum_loop());
    let nl = build_mcu(&cfg)?;
    let pins = McuPins::find(&nl);
    println!(
        "lockstep MCU: {} gates, {} flip-flops",
        nl.gate_count(),
        nl.dff_count()
    );

    // FMEA first: what does the worksheet promise?
    let zones = extract_zones(&nl, &fmea::extract_config());
    let result = fmea::build_worksheet(&zones, &cfg).compute();
    println!(
        "FMEA: SFF {:.2}%, DC {:.2}%\n{}",
        result.sff().unwrap() * 100.0,
        result.dc().unwrap() * 100.0,
        report::render_ranking(&result, &zones, 5)
    );

    // now the demonstration: run, flip a bit in core 1, watch the alarm
    let mut sim = Simulator::new(&nl)?;
    let watch: Vec<NetId> = ["out[0]", "out[7]", "out_valid", "alarm_lockstep"]
        .iter()
        .chain(["core0_acc[0]", "core1_acc[0]", "core0_pc[0]", "core1_pc[0]"].iter())
        .map(|n| nl.net_by_name(n).expect("net exists"))
        .collect();
    let file = std::fs::File::create("lockstep_mcu.vcd")?;
    let mut vcd = VcdWriter::new(std::io::BufWriter::new(file), &nl, watch)?;

    let w = run_workload(&pins, 40);
    let flip_at = 17usize;
    let victim = nl.net_by_name("core1_acc[5]").unwrap();
    let Driver::Dff(ff) = nl.net(victim).driver else {
        unreachable!("acc bits are registers");
    };
    let mut alarm_cycle = None;
    for (cycle, inputs) in w.iter().enumerate() {
        for &(n, v) in inputs {
            sim.set(n, v);
        }
        if cycle == flip_at {
            sim.flip_ff(ff);
            println!("cycle {cycle}: SEU injected into core1_acc[5]");
        }
        sim.eval();
        vcd.sample(&sim)?;
        if alarm_cycle.is_none() && sim.get(pins.alarm) == Logic::One {
            alarm_cycle = Some(cycle);
        }
        sim.tick();
    }
    vcd.finish()?;

    match alarm_cycle {
        Some(c) => println!(
            "cycle {c}: alarm_lockstep asserted — detection latency {} cycle(s)",
            c - flip_at
        ),
        None => println!("the flip was masked (overwritten before comparison)"),
    }
    println!("waveform written to lockstep_mcu.vcd (open with any VCD viewer)");
    Ok(())
}
