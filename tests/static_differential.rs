//! Differential tests: the static pre-pass (`--prune`,
//! `Campaign::pruning(Prune::Static)`) produces bit-identical results to
//! the unpruned baseline on all four bundled example designs, under every
//! engine and composed with fault collapsing.
//!
//! These are the acceptance tests of the prune plan: a proof of
//! undetectability replaces a simulation, so outcomes (in fault-list
//! order), per-zone coverage attribution and measured DC/SFF must match
//! the simulated truth exactly. Any divergence means either the static
//! analysis or a simulation engine is unsound — there is no benign
//! disagreement. The golden-trace cross-check inside the plan builder
//! additionally turns every pruned campaign into a soundness oracle: a
//! simulated golden value contradicting a constant-site proof panics
//! (see `crates/faultsim/src/prune.rs`).
//!
//! Kept deliberately small (reduced memory size, strided stuck-at lists)
//! so the suite stays fast in debug builds; the CI `static-differential`
//! job also runs it under `--release` together with the SL02xx lint gate
//! and a `bench_static --quick` smoke run.

use soc_fmea::accel::Topology;
use soc_fmea::faultsim::{
    generate_fault_list, Campaign, CampaignResult, Collapse, Engine, EnvironmentBuilder, Fault,
    FaultKind, FaultListConfig, OperationalProfile, Proof, Prune, TestabilityAnalysis,
};
use soc_fmea::fmea::extract_zones;
use soc_fmea::mcu::{build_mcu, fmea as mcu_fmea, programs, rtl::run_workload, McuConfig, McuPins};
use soc_fmea::memsys::{
    certification_workload, fmea as memsys_fmea, rtl, MemSysConfig, MemSysPins,
};
use soc_fmea::netlist::{Driver, Logic, NetId, Netlist};
use soc_fmea::sim::Workload;

/// A fault list exercising every fault kind, small enough for debug builds.
fn fault_config() -> FaultListConfig {
    FaultListConfig {
        bitflips_per_zone: 2,
        stuckats_per_zone: 1,
        local_faults_per_zone: 1,
        wide_faults: 4,
        bridge_faults: 3,
        global_faults: true,
        skip_inactive_zones: true,
        collapse: false,
        seed: 2008,
    }
}

/// A strided exhaustive stuck-at list: both polarities on every `stride`-th
/// driven net, constants included — stuck-ats on constant-driven nets are
/// exactly where the `ConstantSite` proof bites.
fn strided_stuck_list(netlist: &Netlist, stride: usize, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        if i % stride != 0 || matches!(net.driver, Driver::None) {
            continue;
        }
        for value in [Logic::Zero, Logic::One] {
            faults.push(Fault {
                kind: FaultKind::StuckAt {
                    net: NetId::from_index(i),
                    value,
                },
                zone: None,
                inject_cycle: 0,
                label: format!("stuck {}-sa{value}", net.name),
            });
        }
        if faults.len() >= cap {
            break;
        }
    }
    faults
}

/// Runs unpruned and pruned campaigns over the same environment and
/// asserts bit-identity across every engine, with and without collapsing.
/// Returns the number of faults the pruned runs answered statically.
fn assert_differential(
    design: &str,
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    workload: &Workload,
    sw_test_window: Option<(usize, usize)>,
) -> usize {
    let env = EnvironmentBuilder::new(netlist, zones, workload)
        .alarms_matching("alarm_")
        .sw_test_window(sw_test_window)
        .build();
    let profile = OperationalProfile::collect(&env);
    let generated = generate_fault_list(&env, &profile, &fault_config());
    assert!(!generated.is_empty(), "{design}: empty fault list");
    let stuck = strided_stuck_list(netlist, 5, 120);
    assert!(!stuck.is_empty(), "{design}: empty stuck-at list");

    let mut total_pruned = 0;
    for (list_name, faults) in [("generated", &generated), ("stuck-at", &stuck)] {
        let baseline: CampaignResult = Campaign::new(&env, faults).run();
        for engine in [Engine::Lockstep, Engine::Sparse, Engine::Ppsfp] {
            for collapse in [Collapse::Off, Collapse::Dictionary] {
                let campaign = Campaign::new(&env, faults)
                    .engine(engine)
                    .collapsing(collapse)
                    .pruning(Prune::Static)
                    .checkpoint_interval(16)
                    .threads(2);
                let stats = campaign.stats();
                let pruned = campaign.run();
                assert_eq!(
                    baseline, pruned,
                    "{design}/{list_name}: pruned result diverges \
                     (engine {engine:?}, collapse {collapse:?})"
                );
                // DC / SFF / coverage ride on the outcomes, but assert
                // them explicitly — they are the safety measurements the
                // paper reports.
                assert_eq!(baseline.measured_dc(), pruned.measured_dc());
                assert_eq!(baseline.measured_sff(), pruned.measured_sff());
                assert_eq!(baseline.coverage, pruned.coverage);
                total_pruned += stats.faults_pruned();
            }
        }
    }
    total_pruned
}

fn memsys_differential(cfg: MemSysConfig, design: &str) -> usize {
    let netlist = rtl::build_netlist(&cfg).expect("valid memsys netlist");
    let zones = extract_zones(&netlist, &memsys_fmea::extract_config());
    let pins = MemSysPins::find(&netlist, &cfg);
    let cert = certification_workload(&pins, &cfg);
    assert_differential(
        design,
        &netlist,
        &zones,
        &cert.workload,
        cert.sw_test_window,
    )
}

fn mcu_differential(cfg: McuConfig, design: &str) -> usize {
    let netlist = build_mcu(&cfg).expect("valid mcu netlist");
    let zones = extract_zones(&netlist, &mcu_fmea::extract_config());
    let pins = McuPins::find(&netlist);
    let workload = run_workload(&pins, 48);
    assert_differential(design, &netlist, &zones, &workload, None)
}

#[test]
fn fmem_hardened_pruned_matches_baseline() {
    memsys_differential(MemSysConfig::hardened().with_words(8), "fmem");
}

#[test]
fn fmem_baseline_pruned_matches_baseline_and_prunes() {
    // The baseline F-MEM ties its distributed-syndrome alarms to constants,
    // so the constant-site proof must actually fire here: a zero count
    // would make the whole suite vacuous.
    let pruned = memsys_differential(MemSysConfig::baseline().with_words(8), "fmem-baseline");
    assert!(
        pruned > 0,
        "fmem-baseline: expected the static pre-pass to prune at least one fault"
    );
}

#[test]
fn mcu_lockstep_pruned_matches_baseline() {
    mcu_differential(McuConfig::lockstep(programs::checksum_loop()), "mcu");
}

#[test]
fn mcu_single_pruned_matches_baseline() {
    mcu_differential(McuConfig::single(programs::checksum_loop()), "mcu-single");
}

/// Fabricated proofs must be rejected by the machine checker: claiming a
/// live net constant or a monitor-reaching net unmonitorable fails
/// `check_proof`, while every proof the classifier itself emits passes it.
#[test]
fn fabricated_proofs_are_rejected_by_the_checker() {
    let netlist = rtl::build_netlist(&MemSysConfig::baseline().with_words(8)).unwrap();
    let topo = Topology::build(&netlist).unwrap();
    let analysis = TestabilityAnalysis::analyze(&netlist, &topo, netlist.outputs());

    let mut emitted = 0;
    for (i, net) in netlist.nets().iter().enumerate() {
        let id = NetId::from_index(i);
        for value in [Logic::Zero, Logic::One] {
            if let Some(proof) = analysis.classify_stuck_at(id, value) {
                assert!(
                    analysis.check_proof(&netlist, &topo, &proof),
                    "emitted proof for `{}` fails its own checker",
                    net.name
                );
                emitted += 1;
            }
        }
    }
    assert!(emitted > 0, "classifier emitted no proofs at all");

    // A live, monitored primary output: provably neither constant nor
    // unmonitorable.
    let rdata = netlist
        .outputs()
        .iter()
        .copied()
        .find(|&n| netlist.net(n).name.starts_with("rdata"))
        .expect("memsys has rdata outputs");
    for value in [Logic::Zero, Logic::One] {
        assert!(
            !analysis.check_proof(&netlist, &topo, &Proof::ConstantSite { net: rdata, value }),
            "fabricated constant-site proof accepted"
        );
    }
    assert!(
        !analysis.check_proof(&netlist, &topo, &Proof::NoPathToMonitor { net: rdata }),
        "fabricated no-path proof accepted"
    );
}
