//! Integration tests for the paper's §6 flow on the memory sub-system:
//! both configurations, gate-level vs behavioural agreement, and the
//! headline SFF ordering.

use soc_fmea::fmea::extract_zones;
use soc_fmea::iec61508::{Sil, SubsystemType};
use soc_fmea::memsys::{
    certification_workload, config::MemSysConfig, fmea, rtl, Codec, MemSysPins,
};
use soc_fmea::netlist::Logic;
use soc_fmea::sim::Simulator;

#[test]
fn headline_result_baseline_vs_hardened() {
    let mut sff = Vec::new();
    for cfg in [MemSysConfig::baseline(), MemSysConfig::hardened()] {
        let nl = rtl::build_netlist(&cfg).unwrap();
        let zones = extract_zones(&nl, &fmea::extract_config());
        let ws = fmea::build_worksheet(&zones, &cfg);
        sff.push(ws.compute().sff().unwrap());
    }
    let (base, hard) = (sff[0], sff[1]);
    // the paper's shape: baseline misses SIL3 at HFT 0, hardened clears it
    assert!(base < 0.99 && base > 0.88, "baseline SFF {base}");
    assert!(hard >= 0.99, "hardened SFF {hard}");
    assert!(hard - base > 0.03, "the gap must be substantial");
}

#[test]
fn hardened_is_sil3_type_b() {
    let cfg = MemSysConfig::hardened();
    let nl = rtl::build_netlist(&cfg).unwrap();
    let zones = extract_zones(&nl, &fmea::extract_config());
    let result = fmea::build_worksheet(&zones, &cfg).compute();
    assert_eq!(result.subsystem, SubsystemType::B);
    assert_eq!(result.sil(), Some(Sil::Sil3));
}

#[test]
fn zone_census_matches_paper_scale() {
    // "about 170 sensible zones resulted"
    let cfg = MemSysConfig::hardened().with_words(128);
    let nl = rtl::build_netlist(&cfg).unwrap();
    let zones = extract_zones(&nl, &fmea::extract_config());
    assert!(
        (150..=210).contains(&zones.len()),
        "zone census {} should be in the paper's region (~170)",
        zones.len()
    );
}

#[test]
fn gate_level_storage_matches_behavioural_codec() {
    let cfg = MemSysConfig::hardened().with_words(16);
    let nl = rtl::build_netlist(&cfg).unwrap();
    let pins = MemSysPins::find(&nl, &cfg);
    let codec = Codec::new(true);
    let mut sim = Simulator::new(&nl).unwrap();
    // reset
    sim.set(pins.rst, Logic::One);
    for &n in [
        pins.req,
        pins.wr,
        pins.privilege,
        pins.mpu_wr,
        pins.bist_en,
        pins.err_inject0,
        pins.err_inject1,
    ]
    .iter()
    {
        sim.set(n, Logic::Zero);
    }
    sim.set_word(&pins.addr, 0);
    sim.set_word(&pins.wdata, 0);
    sim.set_word(&pins.mpu_attr, 0);
    sim.tick();
    sim.set(pins.rst, Logic::Zero);
    sim.tick();
    // write three words and compare raw storage with the software codec
    for (addr, data) in [(1u64, 0xdead_beefu64), (7, 0x0123_4567), (12, 0xffff_0000)] {
        sim.set(pins.req, Logic::One);
        sim.set(pins.wr, Logic::One);
        sim.set_word(&pins.addr, addr);
        sim.set_word(&pins.wdata, data);
        sim.tick();
        sim.set(pins.req, Logic::Zero);
        sim.set(pins.wr, Logic::Zero);
        sim.tick();
        sim.tick();
        let word: Vec<_> = (0..39)
            .map(|i| nl.net_by_name(&format!("word{addr}[{i}]")).unwrap())
            .collect();
        assert_eq!(
            sim.get_word(&word),
            Some(codec.encode(data as u32, addr as u32)),
            "stored code word must match the software codec at addr {addr}"
        );
    }
}

#[test]
fn certification_workload_is_clean_on_golden_design() {
    let cfg = MemSysConfig::hardened().with_words(16);
    let nl = rtl::build_netlist(&cfg).unwrap();
    let pins = MemSysPins::find(&nl, &cfg);
    let cert = certification_workload(&pins, &cfg);
    let mut sim = Simulator::new(&nl).unwrap();
    let uncorr = nl.net_by_name("alarm_uncorr").unwrap();
    let mut uncorr_outside_selftest = 0u32;
    let corr = nl.net_by_name("alarm_corr").unwrap();
    let mut corr_seen = false;
    // the error-injection self-test legitimately fires both alarms; after
    // the workload no residual error may remain
    cert.workload.run(&mut sim, |_, s| {
        corr_seen |= s.get(corr) == Logic::One;
        if s.get(uncorr) == Logic::One {
            uncorr_outside_selftest += 1;
        }
    });
    assert!(corr_seen, "self-test must exercise the correction path");
    assert!(
        uncorr_outside_selftest <= 8,
        "only the injected double errors may fire alarm_uncorr"
    );
}

#[test]
fn each_hardening_measure_improves_the_worksheet() {
    let base_cfg = MemSysConfig::baseline();
    let nl = rtl::build_netlist(&base_cfg).unwrap();
    let zones = extract_zones(&nl, &fmea::extract_config());
    let base = fmea::build_worksheet(&zones, &base_cfg)
        .compute()
        .sff()
        .unwrap();
    // measures that change only claims can reuse the same netlist; measures
    // that add hardware need a rebuild — do both uniformly
    for cfg in [
        MemSysConfig {
            address_in_ecc: true,
            ..base_cfg
        },
        MemSysConfig {
            write_buffer_parity: true,
            ..base_cfg
        },
        MemSysConfig {
            coder_output_checker: true,
            ..base_cfg
        },
        MemSysConfig {
            redundant_pipeline_checker: true,
            ..base_cfg
        },
        MemSysConfig {
            distributed_syndrome: true,
            ..base_cfg
        },
        MemSysConfig {
            sw_startup_test: true,
            ..base_cfg
        },
    ] {
        let nl = rtl::build_netlist(&cfg).unwrap();
        let zones = extract_zones(&nl, &fmea::extract_config());
        let sff = fmea::build_worksheet(&zones, &cfg).compute().sff().unwrap();
        assert!(
            sff > base,
            "measure {cfg:?} must improve SFF ({sff} <= {base})"
        );
    }
}
