//! Differential tests: the bit-parallel PPSFP campaign engine
//! (`--engine ppsfp`, `Campaign::engine(Engine::Ppsfp)`) produces
//! bit-identical results to the baseline lockstep engine on all four
//! bundled example designs.
//!
//! These are the acceptance tests of the word-level simulation core and the
//! batched campaign kernel: packing up to `FAULT_LANES` faulty machines
//! into the lanes of each word is a pure execution strategy, so outcomes,
//! per-zone coverage and measured DC/SFF must match exactly — serial and
//! sharded, alone and composed with fault collapsing, and all the way out
//! to the byte-identical stdout of the `socfmea inject` binary.
//!
//! Kept deliberately small (reduced memory size, strided stuck-at lists)
//! so the suite stays fast in debug builds; the CI `ppsfp-differential`
//! job also runs it under `--release` together with a
//! `bench_collapse --quick` smoke run.

use soc_fmea::faultsim::{
    generate_fault_list, Campaign, CampaignResult, Collapse, Engine, EnvironmentBuilder, Fault,
    FaultKind, FaultListConfig, OperationalProfile,
};
use soc_fmea::fmea::extract_zones;
use soc_fmea::mcu::{build_mcu, fmea as mcu_fmea, programs, rtl::run_workload, McuConfig, McuPins};
use soc_fmea::memsys::{
    certification_workload, fmea as memsys_fmea, rtl, MemSysConfig, MemSysPins,
};
use soc_fmea::netlist::{Driver, Logic, NetId, Netlist};
use soc_fmea::sim::Workload;

/// A fault list exercising every fault kind, small enough for debug builds.
/// The non-stuck-at kinds exercise the per-fault fallback inside a forced
/// PPSFP run.
fn fault_config() -> FaultListConfig {
    FaultListConfig {
        bitflips_per_zone: 2,
        stuckats_per_zone: 1,
        local_faults_per_zone: 1,
        wide_faults: 4,
        bridge_faults: 3,
        global_faults: true,
        skip_inactive_zones: true,
        collapse: false,
        seed: 2007,
    }
}

/// A strided exhaustive stuck-at list: both polarities on every `stride`-th
/// driven, non-constant net, capped so debug builds stay fast. Dense enough
/// to fill several 63-fault words.
fn strided_stuck_list(netlist: &Netlist, stride: usize, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        if i % stride != 0 || matches!(net.driver, Driver::None | Driver::Const(_)) {
            continue;
        }
        for value in [Logic::Zero, Logic::One] {
            faults.push(Fault {
                kind: FaultKind::StuckAt {
                    net: NetId::from_index(i),
                    value,
                },
                zone: None,
                inject_cycle: 0,
                label: format!("stuck {}-sa{value}", net.name),
            });
        }
        if faults.len() >= cap {
            break;
        }
    }
    faults
}

/// Runs baseline and PPSFP campaigns over the same environment and asserts
/// bit-identity at one and four threads, with and without collapsing.
fn assert_differential(
    design: &str,
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    workload: &Workload,
    sw_test_window: Option<(usize, usize)>,
) {
    let env = EnvironmentBuilder::new(netlist, zones, workload)
        .alarms_matching("alarm_")
        .sw_test_window(sw_test_window)
        .build();
    let profile = OperationalProfile::collect(&env);
    let generated = generate_fault_list(&env, &profile, &fault_config());
    assert!(!generated.is_empty(), "{design}: empty fault list");
    let stuck = strided_stuck_list(netlist, 5, 120);
    assert!(!stuck.is_empty(), "{design}: empty stuck-at list");

    for (list_name, faults) in [("generated", &generated), ("stuck-at", &stuck)] {
        let baseline: CampaignResult = Campaign::new(&env, faults).run();
        for threads in [1usize, 4] {
            let ppsfp = Campaign::new(&env, faults)
                .engine(Engine::Ppsfp)
                .threads(threads)
                .run();
            assert_eq!(
                baseline, ppsfp,
                "{design}/{list_name}: ppsfp result diverges at {threads} threads"
            );
            let composed = Campaign::new(&env, faults)
                .engine(Engine::Ppsfp)
                .collapsing(Collapse::Dictionary)
                .threads(threads)
                .run();
            assert_eq!(
                baseline, composed,
                "{design}/{list_name}: collapse+ppsfp result diverges at {threads} threads"
            );
            // DC / SFF / coverage ride on the outcomes, but assert them
            // explicitly — they are the safety measurements the paper
            // reports.
            assert_eq!(baseline.measured_dc(), composed.measured_dc());
            assert_eq!(baseline.measured_sff(), composed.measured_sff());
            assert_eq!(baseline.coverage, composed.coverage);
        }
    }
}

fn memsys_differential(cfg: MemSysConfig, design: &str) {
    let netlist = rtl::build_netlist(&cfg).expect("valid memsys netlist");
    let zones = extract_zones(&netlist, &memsys_fmea::extract_config());
    let pins = MemSysPins::find(&netlist, &cfg);
    let cert = certification_workload(&pins, &cfg);
    assert_differential(
        design,
        &netlist,
        &zones,
        &cert.workload,
        cert.sw_test_window,
    );
}

fn mcu_differential(cfg: McuConfig, design: &str) {
    let netlist = build_mcu(&cfg).expect("valid mcu netlist");
    let zones = extract_zones(&netlist, &mcu_fmea::extract_config());
    let pins = McuPins::find(&netlist);
    let workload = run_workload(&pins, 48);
    assert_differential(design, &netlist, &zones, &workload, None);
}

#[test]
fn fmem_hardened_ppsfp_matches_baseline() {
    memsys_differential(MemSysConfig::hardened().with_words(8), "fmem");
}

#[test]
fn fmem_baseline_ppsfp_matches_baseline() {
    memsys_differential(MemSysConfig::baseline().with_words(8), "fmem-baseline");
}

#[test]
fn mcu_lockstep_ppsfp_matches_baseline() {
    mcu_differential(McuConfig::lockstep(programs::checksum_loop()), "mcu");
}

#[test]
fn mcu_single_ppsfp_matches_baseline() {
    mcu_differential(McuConfig::single(programs::checksum_loop()), "mcu-single");
}

/// The report on stdout — zone tables, measured DC/SFF, coverage — must be
/// byte-identical whichever engine classified the faults, for every example
/// design the binary bundles.
#[test]
fn inject_stdout_is_byte_identical_across_engines() {
    for example in ["fmem", "fmem-baseline", "mcu", "mcu-single"] {
        let run = |engine: &str| {
            let out = std::process::Command::new(env!("CARGO_BIN_EXE_socfmea"))
                .args([
                    "inject",
                    "--example",
                    example,
                    "--cycles",
                    "12",
                    "--quiet",
                    "--engine",
                    engine,
                ])
                .output()
                .expect("binary runs");
            assert!(out.status.success(), "{example}: inject --engine {engine}");
            out.stdout
        };
        let lockstep = run("lockstep");
        for engine in ["ppsfp", "sparse", "auto"] {
            assert_eq!(
                lockstep,
                run(engine),
                "{example}: stdout differs between lockstep and {engine}"
            );
        }
    }
}
