//! Integration: designs survive a structural-Verilog round trip and behave
//! identically afterwards (the import/export path a user exchanging
//! netlists with an external synthesis flow relies on).

use soc_fmea::fmea::{extract_zones, ExtractConfig};
use soc_fmea::netlist::{parse_verilog, write_verilog, Logic, Netlist};
use soc_fmea::rtl::gen;
use soc_fmea::sim::{assign_bus, Simulator, Workload};

fn behaviour_fingerprint(nl: &Netlist, cycles: u64) -> Vec<Option<u64>> {
    let inputs: Vec<_> = nl
        .inputs()
        .iter()
        .copied()
        .filter(|&n| {
            // skip nets marked critical (clock) — they carry no waveform
            !nl.critical_nets().iter().any(|&(c, _)| c == n)
        })
        .collect();
    let outputs: Vec<_> = nl.outputs().to_vec();
    let mut w = Workload::new("fp");
    for c in 0..cycles {
        let mut v = Vec::new();
        assign_bus(&mut v, &inputs, c.wrapping_mul(0x9e37_79b9));
        w.push_cycle(v);
    }
    let mut sim = Simulator::new(nl).unwrap();
    let mut rows = Vec::new();
    w.run(&mut sim, |_, s| rows.push(s.get_word(&outputs)));
    rows
}

#[test]
fn pipeline_round_trips_with_identical_behaviour() {
    let nl = gen::pipeline("p", 8, 3).unwrap();
    let text = write_verilog(&nl);
    let back = parse_verilog(&text).expect("own output parses");
    assert_eq!(back.dff_count(), nl.dff_count());
    assert_eq!(back.gate_count(), nl.gate_count());
    assert_eq!(
        behaviour_fingerprint(&nl, 16),
        behaviour_fingerprint(&back, 16),
        "round-tripped design must behave identically"
    );
}

#[test]
fn synthetic_datapath_round_trips() {
    let nl = gen::synthetic_datapath("s", 6, 2, 30, 42).unwrap();
    let back = parse_verilog(&write_verilog(&nl)).unwrap();
    assert_eq!(
        behaviour_fingerprint(&nl, 12),
        behaviour_fingerprint(&back, 12)
    );
}

#[test]
fn lfsr_round_trips() {
    let nl = gen::lfsr("l", 8, 0b1000_1110).unwrap();
    let back = parse_verilog(&write_verilog(&nl)).unwrap();
    // drive load/seed for a defined start, then free-run
    let run = |nl: &Netlist| -> Vec<Option<u64>> {
        let load = nl.net_by_name("load").unwrap();
        let seed: Vec<_> = (0..8)
            .map(|i| nl.net_by_name(&format!("seed[{i}]")).unwrap())
            .collect();
        let out: Vec<_> = (0..8)
            .map(|i| nl.net_by_name(&format!("out[{i}]")).unwrap())
            .collect();
        let mut sim = Simulator::new(nl).unwrap();
        sim.set(load, Logic::One);
        sim.set_word(&seed, 0x5a);
        sim.tick();
        sim.set(load, Logic::Zero);
        let mut rows = Vec::new();
        for _ in 0..20 {
            rows.push(sim.get_word(&out));
            sim.tick();
        }
        rows
    };
    let original = gen::lfsr("l", 8, 0b1000_1110).unwrap();
    assert_eq!(run(&original), run(&back));
}

#[test]
fn zone_extraction_is_stable_across_round_trip() {
    // zones key off register names, which the writer preserves
    let nl = gen::pipeline("p", 4, 2).unwrap();
    let back = parse_verilog(&write_verilog(&nl)).unwrap();
    let z1 = extract_zones(&nl, &ExtractConfig::default());
    let z2 = extract_zones(&back, &ExtractConfig::default());
    assert_eq!(
        z1.zones_tagged("reg").count(),
        z2.zones_tagged("reg").count()
    );
    // block paths are not serialised, so grouped names differ; bit counts
    // must survive
    let bits = |zs: &soc_fmea::fmea::ZoneSet| -> usize {
        zs.zones().iter().map(|z| z.storage_bits()).sum()
    };
    assert_eq!(bits(&z1), bits(&z2));
}
