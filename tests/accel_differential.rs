//! Differential tests: the accelerated campaign engine (`--engine sparse`,
//! `Campaign::engine(Engine::Sparse)`) produces bit-identical results to
//! the baseline lockstep engine on all four bundled example designs.
//!
//! These are the acceptance tests of the `socfmea-accel` subsystem: warm
//! starts, divergence-set propagation and convergence early exit are pure
//! execution strategies, so outcomes *and* coverage must match exactly —
//! on the hardened and baseline F-MEM memory subsystems and on the
//! lockstep and single-core MCUs.
//!
//! Kept deliberately small (reduced memory size, modest fault lists) so the
//! suite stays fast in debug builds; the CI `accel-differential` job also
//! runs it under `--release` together with a `bench_accel --quick` smoke
//! run.

use soc_fmea::faultsim::{
    generate_fault_list, Campaign, CampaignResult, Engine, EnvironmentBuilder, FaultListConfig,
    OperationalProfile,
};
use soc_fmea::fmea::extract_zones;
use soc_fmea::mcu::{build_mcu, fmea as mcu_fmea, programs, rtl::run_workload, McuConfig, McuPins};
use soc_fmea::memsys::{
    certification_workload, fmea as memsys_fmea, rtl, MemSysConfig, MemSysPins,
};
use soc_fmea::netlist::Netlist;
use soc_fmea::sim::Workload;

/// A fault list exercising every fault kind, small enough for debug builds.
fn fault_config() -> FaultListConfig {
    FaultListConfig {
        bitflips_per_zone: 2,
        stuckats_per_zone: 1,
        local_faults_per_zone: 1,
        wide_faults: 4,
        bridge_faults: 3,
        global_faults: true,
        skip_inactive_zones: true,
        collapse: false,
        seed: 2007,
    }
}

/// Runs baseline and accelerated campaigns over the same environment and
/// asserts bit-identity at two checkpoint intervals.
fn assert_differential(
    design: &str,
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    workload: &Workload,
    sw_test_window: Option<(usize, usize)>,
) {
    let env = EnvironmentBuilder::new(netlist, zones, workload)
        .alarms_matching("alarm_")
        .sw_test_window(sw_test_window)
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(&env, &profile, &fault_config());
    assert!(!faults.is_empty(), "{design}: empty fault list");

    let baseline: CampaignResult = Campaign::new(&env, &faults).run();
    for interval in [1usize, 16] {
        let accel = Campaign::new(&env, &faults)
            .engine(Engine::Sparse)
            .checkpoint_interval(interval)
            .threads(2)
            .run();
        assert_eq!(
            baseline, accel,
            "{design}: accelerated result diverges at checkpoint interval {interval}"
        );
    }
}

fn memsys_differential(cfg: MemSysConfig, design: &str) {
    let netlist = rtl::build_netlist(&cfg).expect("valid memsys netlist");
    let zones = extract_zones(&netlist, &memsys_fmea::extract_config());
    let pins = MemSysPins::find(&netlist, &cfg);
    let cert = certification_workload(&pins, &cfg);
    assert_differential(
        design,
        &netlist,
        &zones,
        &cert.workload,
        cert.sw_test_window,
    );
}

fn mcu_differential(cfg: McuConfig, design: &str) {
    let netlist = build_mcu(&cfg).expect("valid mcu netlist");
    let zones = extract_zones(&netlist, &mcu_fmea::extract_config());
    let pins = McuPins::find(&netlist);
    let workload = run_workload(&pins, 48);
    assert_differential(design, &netlist, &zones, &workload, None);
}

#[test]
fn fmem_hardened_accelerated_matches_baseline() {
    memsys_differential(MemSysConfig::hardened().with_words(8), "fmem");
}

#[test]
fn fmem_baseline_accelerated_matches_baseline() {
    memsys_differential(MemSysConfig::baseline().with_words(8), "fmem-baseline");
}

#[test]
fn mcu_lockstep_accelerated_matches_baseline() {
    mcu_differential(McuConfig::lockstep(programs::checksum_loop()), "mcu");
}

#[test]
fn mcu_single_accelerated_matches_baseline() {
    mcu_differential(McuConfig::single(programs::checksum_loop()), "mcu-single");
}
