//! Integration tests of the `socfmea` command-line tool, driving the real
//! binary through `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

const DEMO: &str = "
    module demo(clk, rst, a, b, y);
    input clk, rst, a, b;
    output y;
    wire s; wire q;
    xor g0(s, a, b);
    dffr r0(q, s, rst);
    buf g1(y, q);
    endmodule";

/// A lockstep accumulator bit with a comparator alarm — small enough to
/// inject into in a test, protected enough that the campaign measures a
/// nonzero diagnostic coverage.
const PROTECTED: &str = "
    module lockstep_acc(clk, rst, en, din, q, alarm_cmp);
    input clk, rst, en, din;
    output q;
    output alarm_cmp;
    wire d_a; wire d_b; wire q_a; wire q_b;
    xor g0 (d_a, q_a, din);
    xor g1 (d_b, q_b, din);
    dffre r0 (q_a, d_a, en, rst);
    dffre r1 (q_b, d_b, en, rst);
    buf g2 (q, q_a);
    xor g3 (alarm_cmp, q_a, q_b);
    endmodule";

fn write_design(tag: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("socfmea_cli_{tag}_{}.v", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(source.as_bytes()).expect("write");
    path
}

fn write_demo() -> std::path::PathBuf {
    write_design("demo", DEMO)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_socfmea"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn zones_lists_the_design() {
    let path = write_demo();
    let (stdout, _, ok) = run(&["zones", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("sensible zones"));
    assert!(stdout.contains("critnet/clk"));
    assert!(stdout.contains("[reg] q"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn analyze_produces_every_format() {
    let path = write_demo();
    let (text, _, ok) = run(&["analyze", path.to_str().unwrap()]);
    assert!(ok);
    assert!(text.contains("SFF ="));

    let (csv, _, ok) = run(&["analyze", path.to_str().unwrap(), "--format", "csv"]);
    assert!(ok);
    assert!(csv.starts_with("zone,kind"));

    let (srs, _, ok) = run(&["analyze", path.to_str().unwrap(), "--format", "srs"]);
    assert!(ok);
    assert!(srs.contains("# Safety Requirements Specification"));
    assert!(srs.contains("ISO 26262 reading"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn options_change_the_verdict() {
    let path = write_demo();
    let (hft0, _, _) = run(&["analyze", path.to_str().unwrap()]);
    let (hft1, _, _) = run(&["analyze", path.to_str().unwrap(), "--hft", "1"]);
    assert!(hft0.contains("HFT=0"));
    assert!(hft1.contains("HFT=1"));
    let (typed, _, ok) = run(&[
        "analyze",
        path.to_str().unwrap(),
        "--type-a",
        "--class",
        "q=cpu",
    ]);
    assert!(ok);
    assert!(typed.contains("A-type"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn inject_measures_coverage_on_a_protected_design() {
    let path = write_design("inject", PROTECTED);
    let (stdout, stderr, ok) = run(&[
        "inject",
        path.to_str().unwrap(),
        "--threads",
        "2",
        "--seed",
        "7",
        "--cycles",
        "24",
    ]);
    assert!(ok, "inject failed: {stderr}");
    assert!(stdout.contains("fault list:"));
    // the wall-clock stats line lives on stderr, keeping stdout
    // deterministic for a given seed
    assert!(stderr.contains("campaign:"), "missing stats line: {stderr}");
    assert!(!stdout.contains("campaign:"));
    assert!(stdout.contains("zone DC"));
    assert!(stdout.contains("measured DC"));
    assert!(stdout.contains("measured SFF"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn inject_quiet_silences_stderr_but_not_the_report() {
    let path = write_design("inject_quiet", PROTECTED);
    let (stdout, stderr, ok) = run(&[
        "inject",
        path.to_str().unwrap(),
        "--seed",
        "7",
        "--cycles",
        "24",
        "--quiet",
    ]);
    assert!(ok, "inject --quiet failed: {stderr}");
    assert!(stderr.is_empty(), "stderr not quiet: {stderr}");
    assert!(stdout.contains("measured DC"));
    assert!(stdout.contains("measured SFF"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn inject_accepts_the_bundled_examples() {
    let (stdout, stderr, ok) = run(&["inject", "--example", "fmem", "--cycles", "8", "--quiet"]);
    assert!(ok, "inject --example fmem failed: {stderr}");
    assert!(stdout.contains("memsys:"));
    assert!(stdout.contains("measured SFF"));
}

#[test]
fn inject_output_is_identical_across_thread_counts() {
    let path = write_design("inject_det", PROTECTED);
    // the wall-clock stats line goes to stderr, so the whole of stdout is
    // deterministic and can be compared verbatim
    let tabulate = |threads: &str| {
        let (stdout, _, ok) = run(&[
            "inject",
            path.to_str().unwrap(),
            "--threads",
            threads,
            "--seed",
            "42",
            "--cycles",
            "24",
        ]);
        assert!(ok);
        stdout
    };
    assert_eq!(tabulate("1"), tabulate("4"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn errors_are_reported_cleanly() {
    let (_, stderr, ok) = run(&["analyze", "/nonexistent/file.v"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let (_, stderr, ok) = run(&["frobnicate", "x.v"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn lint_mcu_example_reports_seeded_findings_as_json() {
    let (json, _, ok) = run(&["lint", "--example", "mcu", "--format", "json"]);
    assert!(ok, "lint must exit 0 when only info findings remain");
    assert!(json.starts_with("{\"design\":\"mcu\""));
    // the seeded structural finding (lockstep cores share cone logic) and
    // the seeded worksheet finding (alarm zones claim no diagnostics)
    assert!(
        json.contains("\"code\":\"SL0004\""),
        "missing SL0004 in {json}"
    );
    assert!(
        json.contains("\"code\":\"SL0107\""),
        "missing SL0107 in {json}"
    );
    assert!(json.contains("\"errors\":0"));
}

#[test]
fn lint_examples_pass_the_deny_warnings_gate() {
    for example in ["fmem", "fmem-baseline", "mcu", "mcu-single"] {
        let (stdout, _, ok) = run(&["lint", "--example", example, "--deny", "warnings"]);
        assert!(ok, "{example} failed --deny warnings:\n{stdout}");
        assert!(stdout.contains("0 error(s), 0 warning(s)"));
    }
}

#[test]
fn lint_deny_rule_gates_and_allow_silences() {
    let (_, _, ok) = run(&["lint", "--example", "mcu", "--deny", "SL0004"]);
    assert!(!ok, "denied rule with findings must exit nonzero");

    let (json, _, ok) = run(&[
        "lint",
        "--example",
        "mcu",
        "--deny",
        "SL0004",
        "--allow",
        "SL0004",
        "--format",
        "json",
    ]);
    assert!(ok, "a later --allow wins over an earlier --deny");
    assert!(!json.contains("\"code\":\"SL0004\""));
}

#[test]
fn lint_accepts_a_netlist_file() {
    let path = write_design("lint_file", PROTECTED);
    let (text, _, ok) = run(&["lint", path.to_str().unwrap()]);
    assert!(ok, "clean design must lint clean:\n{text}");
    assert!(text.contains("socfmea-lint: lockstep_acc:"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn lint_argument_errors_exit_with_usage() {
    let (_, stderr, ok) = run(&["lint"]);
    assert!(!ok);
    assert!(stderr.contains("exactly one"));

    let (_, stderr, ok) = run(&["lint", "--example", "nonsuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown example"));

    let (_, stderr, ok) = run(&["lint", "x.v", "--deny", "SL4242"]);
    assert!(!ok);
    assert!(stderr.contains("unknown rule code"));
}
