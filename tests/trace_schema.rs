//! Golden schema tests of the JSONL campaign trace written by
//! `socfmea inject --trace-out`.
//!
//! The trace is the audit artefact of a fault-injection campaign, so its
//! shape is a contract: one `fault` record per scheduled fault in fault-list
//! order (the deterministic merge guarantees this for any thread count), a
//! `meta` record first, an `end` record last, and field types that an
//! external consumer can rely on. These tests drive the real binary and
//! re-parse its output with the same JSON codec `trace summarize` uses.

use soc_fmea::obs::json::{self, Value};
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

/// A lockstep accumulator bit with a comparator alarm — small enough to
/// inject into in a test, protected enough that every outcome class shows
/// up in the trace.
const PROTECTED: &str = "
    module lockstep_acc(clk, rst, en, din, q, alarm_cmp);
    input clk, rst, en, din;
    output q;
    output alarm_cmp;
    wire d_a; wire d_b; wire q_a; wire q_b;
    xor g0 (d_a, q_a, din);
    xor g1 (d_b, q_b, din);
    dffre r0 (q_a, d_a, en, rst);
    dffre r1 (q_b, d_b, en, rst);
    buf g2 (q, q_a);
    xor g3 (alarm_cmp, q_a, q_b);
    endmodule";

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("socfmea_trace_{tag}_{}.{ext}", std::process::id()))
}

/// The lockstep accumulator plus a tied-off (feature-disabled) alarm stub:
/// stuck-ats matching the tied value are provably silent, so `--prune`
/// answers them statically and the trace grows `engine: "pruned"` records.
const TIED: &str = "
    module pruned_acc(clk, rst, en, din, q, alarm_cmp, alarm_stub);
    input clk, rst, en, din;
    output q;
    output alarm_cmp;
    output alarm_stub;
    wire d_a; wire d_b; wire q_a; wire q_b; wire stub;
    xor g0 (d_a, q_a, din);
    xor g1 (d_b, q_b, din);
    dffre r0 (q_a, d_a, en, rst);
    dffre r1 (q_b, d_b, en, rst);
    buf g2 (q, q_a);
    xor g3 (alarm_cmp, q_a, q_b);
    tie0 t0 (stub);
    buf g4 (alarm_stub, stub);
    endmodule";

fn write_design(tag: &str) -> PathBuf {
    write_design_src(tag, PROTECTED)
}

fn write_design_src(tag: &str, src: &str) -> PathBuf {
    let path = temp_path(tag, "v");
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(src.as_bytes()).expect("write");
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_socfmea"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Runs an injection campaign writing a trace, returns the parsed records
/// and the campaign's stdout report.
fn inject_traced(tag: &str, extra: &[&str]) -> (Vec<Value>, String) {
    inject_traced_src(tag, PROTECTED, extra)
}

fn inject_traced_src(tag: &str, src: &str, extra: &[&str]) -> (Vec<Value>, String) {
    let design = write_design_src(tag, src);
    let trace = temp_path(tag, "jsonl");
    let mut args = vec![
        "inject",
        design.to_str().unwrap(),
        "--seed",
        "42",
        "--cycles",
        "24",
        "--quiet",
        "--trace-out",
        trace.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let (stdout, stderr, ok) = run(&args);
    assert!(ok, "inject failed: {stderr}");
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let records: Vec<Value> = text
        .lines()
        .enumerate()
        .map(|(n, line)| {
            json::parse(line).unwrap_or_else(|e| panic!("trace line {}: {e:?}", n + 1))
        })
        .collect();
    let _ = std::fs::remove_file(design);
    let _ = std::fs::remove_file(trace);
    (records, stdout)
}

fn ev(v: &Value) -> &str {
    v.get("ev").and_then(Value::as_str).expect("ev field")
}

fn faults_of(records: &[Value]) -> Vec<&Value> {
    records.iter().filter(|r| ev(r) == "fault").collect()
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("field `{key}` missing or not u64 in {v}"))
}

fn opt_u64_field(v: &Value, key: &str) -> Option<u64> {
    let field = v
        .get(key)
        .unwrap_or_else(|| panic!("field `{key}` missing in {v}"));
    if field.is_null() {
        None
    } else {
        Some(
            field
                .as_u64()
                .unwrap_or_else(|| panic!("field `{key}` not u64 in {v}")),
        )
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("field `{key}` missing or not a string in {v}"))
}

/// The canonical rendering of a fault record's deterministic fields — i.e.
/// everything except the wall-clock `nanos` and placement-dependent `shard`.
fn deterministic_key(f: &Value) -> String {
    const DETERMINISTIC: &[&str] = &[
        "i", "label", "kind", "site", "zone", "inject", "outcome", "mismatch", "alarm", "sim",
        "skip", "engine", "rep",
    ];
    DETERMINISTIC
        .iter()
        .map(|k| {
            let field = f
                .get(k)
                .unwrap_or_else(|| panic!("field `{k}` missing in {f}"));
            format!("{k}={field}")
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Just the observable outcome of a fault — identical across engines
/// (baseline, accel, collapse) by the bit-identical contract.
fn outcome_key(f: &Value) -> String {
    const OUTCOME: &[&str] = &[
        "i", "label", "kind", "site", "zone", "inject", "outcome", "mismatch", "alarm",
    ];
    OUTCOME
        .iter()
        .map(|k| format!("{k}={}", f.get(k).expect("outcome field")))
        .collect::<Vec<_>>()
        .join("|")
}

#[test]
fn trace_has_meta_first_end_last_and_one_typed_record_per_fault() {
    let (records, _) = inject_traced("schema", &["--threads", "2"]);
    assert!(
        records.len() >= 3,
        "trace too short: {} records",
        records.len()
    );

    // meta opens the stream and names the run configuration
    let meta = &records[0];
    assert_eq!(ev(meta), "meta");
    assert_eq!(
        u64_field(meta, "schema"),
        soc_fmea::obs::TRACE_SCHEMA_VERSION as u64
    );
    assert_eq!(str_field(meta, "design"), "lockstep_acc");
    assert_eq!(u64_field(meta, "threads"), 2);
    assert_eq!(u64_field(meta, "cycles"), 24);
    assert_eq!(u64_field(meta, "seed"), 42);
    // The CLI defaults to `--engine auto`, which resolves to the sparse
    // engine for this mixed generated fault list (bit flips can't ride a
    // PPSFP word lane), so the meta record reports the accelerated path.
    assert_eq!(meta.get("accel").and_then(Value::as_bool), Some(true));
    assert_eq!(meta.get("collapse").and_then(Value::as_bool), Some(false));

    // end closes it with the totals
    let end = records.last().unwrap();
    assert_eq!(ev(end), "end");
    for k in ["faults", "ne", "sd", "dd", "du", "elapsed_nanos"] {
        u64_field(end, k);
    }

    // exactly one fault record per scheduled fault, in fault-list order
    let faults = faults_of(&records);
    assert_eq!(faults.len() as u64, u64_field(meta, "faults"));
    assert_eq!(faults.len() as u64, u64_field(end, "faults"));
    let mut tally = std::collections::BTreeMap::new();
    for (n, f) in faults.iter().enumerate() {
        assert_eq!(u64_field(f, "i"), n as u64, "records out of order at {n}");
        str_field(f, "label");
        str_field(f, "kind");
        let outcome = str_field(f, "outcome");
        assert!(
            matches!(outcome, "NE" | "SD" | "DD" | "DU"),
            "bad outcome `{outcome}`"
        );
        *tally.entry(outcome.to_owned()).or_insert(0u64) += 1;
        let engine = str_field(f, "engine");
        assert!(
            matches!(
                engine,
                "lockstep" | "sparse" | "warm" | "ppsfp" | "dictionary" | "pruned"
            ),
            "bad engine `{engine}`"
        );
        for k in ["inject", "sim", "skip", "nanos"] {
            u64_field(f, k);
        }
        for k in ["site", "zone"] {
            let field = f.get(k).unwrap_or_else(|| panic!("missing `{k}`"));
            assert!(
                field.is_null() || field.as_str().is_some(),
                "`{k}` not str|null"
            );
        }
        for k in ["mismatch", "alarm", "rep", "shard"] {
            opt_u64_field(f, k);
        }
    }

    // the end record's totals are the tallies of the fault records
    for (k, code) in [("ne", "NE"), ("sd", "SD"), ("dd", "DD"), ("du", "DU")] {
        assert_eq!(
            u64_field(end, k),
            tally.get(code).copied().unwrap_or(0),
            "end `{k}` disagrees with the fault records"
        );
    }
    // the fixture is protected, so the campaign sees detections
    assert!(tally.contains_key("SD") || tally.contains_key("DD"));
}

#[test]
fn trace_deterministic_fields_are_identical_across_thread_counts() {
    let (one, _) = inject_traced("det1", &["--threads", "1"]);
    let (four, _) = inject_traced("det4", &["--threads", "4"]);
    let (f1, f4) = (faults_of(&one), faults_of(&four));
    assert_eq!(f1.len(), f4.len());
    for (a, b) in f1.iter().zip(&f4) {
        assert_eq!(deterministic_key(a), deterministic_key(b));
    }
    // serial campaigns run on one shard; the merge keeps order regardless
    assert!(f1.iter().all(|f| opt_u64_field(f, "shard") == Some(0)));
}

#[test]
fn ppsfp_trace_labels_batched_faults_and_matches_baseline_outcomes() {
    let (base, _) = inject_traced("pbase", &["--threads", "2", "--engine", "lockstep"]);
    let (records, _) = inject_traced("ppsfp", &["--threads", "2", "--engine", "ppsfp"]);
    let (fb, fp) = (faults_of(&base), faults_of(&records));
    assert_eq!(fb.len(), fp.len());
    // bit-identical contract again: only the engine column may differ
    for (b, p) in fb.iter().zip(&fp) {
        assert_eq!(outcome_key(b), outcome_key(p));
    }
    // known-value stuck-ats ride word lanes; the other kinds in the
    // generated list fall back to the per-fault dispatcher
    assert!(fp.iter().any(|f| str_field(f, "engine") == "ppsfp"));
    assert!(fp.iter().any(|f| str_field(f, "engine") != "ppsfp"));
    // batched faults evaluate either the whole workload (first lane of the
    // word) or nothing (the lanes riding along)
    for f in fp.iter().filter(|f| str_field(f, "engine") == "ppsfp") {
        let (sim, skip) = (u64_field(f, "sim"), u64_field(f, "skip"));
        assert_eq!(sim + skip, 24, "ppsfp lane cycles in {f}");
        assert!(sim == 0 || skip == 0, "ppsfp lane split in {f}");
    }
}

#[test]
fn accel_collapse_trace_matches_baseline_outcomes_and_reaggregates() {
    let (base, _) = inject_traced("base", &["--threads", "2"]);
    let design = write_design("accel");
    let trace = temp_path("accel", "jsonl");
    let (stdout, stderr, ok) = run(&[
        "inject",
        design.to_str().unwrap(),
        "--seed",
        "42",
        "--cycles",
        "24",
        "--quiet",
        "--threads",
        "2",
        "--accel",
        "--collapse",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "accelerated inject failed: {stderr}");
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let records: Vec<Value> = text.lines().map(|l| json::parse(l).unwrap()).collect();
    let _ = std::fs::remove_file(design);

    // bit-identical contract: per-fault outcomes equal the baseline's even
    // though the engine column differs
    let (fb, fa) = (faults_of(&base), faults_of(&records));
    assert_eq!(fb.len(), fa.len());
    for (b, a) in fb.iter().zip(&fa) {
        assert_eq!(outcome_key(b), outcome_key(a));
    }
    assert!(fa
        .iter()
        .all(|f| matches!(str_field(f, "engine"), "sparse" | "warm" | "dictionary")));
    // a dictionary fault's representative precedes it in the fault list
    for f in &fa {
        match opt_u64_field(f, "rep") {
            Some(rep) => {
                assert_eq!(str_field(f, "engine"), "dictionary");
                assert!(rep < u64_field(f, "i"));
            }
            None => assert_ne!(str_field(f, "engine"), "dictionary"),
        }
    }

    // `trace summarize` independently recomputes the DC/SFF the run printed
    let (summary, _, ok) = run(&["trace", "summarize", trace.to_str().unwrap()]);
    assert!(ok, "trace summarize failed");
    let claims = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("measured DC") || l.starts_with("measured SFF"))
            .map(str::to_owned)
            .collect()
    };
    let printed = claims(&stdout);
    assert_eq!(printed.len(), 2, "inject printed no DC/SFF: {stdout}");
    assert_eq!(printed, claims(&summary));
    assert!(summary.contains("consistent with fault records"));
    let _ = std::fs::remove_file(trace);
}

#[test]
fn pruned_trace_matches_baseline_outcomes_and_summarizes_per_engine() {
    let (base, _) = inject_traced_src("prbase", TIED, &["--threads", "2"]);
    let design = write_design_src("pruned", TIED);
    let trace = temp_path("pruned", "jsonl");
    let (_, stderr, ok) = run(&[
        "inject",
        design.to_str().unwrap(),
        "--seed",
        "42",
        "--cycles",
        "24",
        "--quiet",
        "--threads",
        "2",
        "--prune",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "pruned inject failed: {stderr}");
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let records: Vec<Value> = text.lines().map(|l| json::parse(l).unwrap()).collect();
    let _ = std::fs::remove_file(design);

    // bit-identical contract: synthesized outcomes equal the simulated
    // baseline's, record for record
    let (fb, fp) = (faults_of(&base), faults_of(&records));
    assert_eq!(fb.len(), fp.len());
    for (b, p) in fb.iter().zip(&fp) {
        assert_eq!(outcome_key(b), outcome_key(p));
    }
    // the tied-off alarm stub guarantees the pre-pass actually fires
    let pruned: Vec<_> = fp
        .iter()
        .filter(|f| str_field(f, "engine") == "pruned")
        .collect();
    assert!(!pruned.is_empty(), "no pruned records in the trace");
    for f in &pruned {
        // a proof replaces a simulation: quiet outcome, zero cycle budget,
        // no representative, no shard placement
        assert_eq!(str_field(f, "outcome"), "NE");
        assert_eq!(u64_field(f, "sim"), 0);
        assert_eq!(u64_field(f, "skip"), 0);
        assert_eq!(opt_u64_field(f, "rep"), None);
        assert_eq!(opt_u64_field(f, "shard"), None);
    }

    // the offline re-aggregation stays consistent and breaks the run down
    // by engine, pruned column included
    let (summary, _, ok) = run(&["trace", "summarize", trace.to_str().unwrap()]);
    assert!(ok, "trace summarize failed");
    assert!(summary.contains("consistent with fault records"));
    let per_engine: Vec<&str> = summary
        .lines()
        .skip_while(|l| !l.starts_with("per-engine"))
        .collect();
    assert!(
        per_engine
            .iter()
            .any(|l| l.trim_start().starts_with("pruned")),
        "per-engine table lacks a pruned row:\n{summary}"
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn trace_flame_folds_spans_and_summarize_rejects_truncation() {
    let design = write_design("flame");
    let trace = temp_path("flame", "jsonl");
    let (_, stderr, ok) = run(&[
        "inject",
        design.to_str().unwrap(),
        "--seed",
        "42",
        "--cycles",
        "24",
        "--quiet",
        "--threads",
        "1",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "inject failed: {stderr}");
    let _ = std::fs::remove_file(design);

    // flame: stdout is pure folded stacks (`a;b;c nanos`), the coverage
    // note rides on stderr so the stacks pipe straight into flamegraph
    // tooling
    let (folded, stderr, ok) = run(&["trace", "flame", trace.to_str().unwrap()]);
    assert!(ok, "trace flame failed: {stderr}");
    assert!(!folded.is_empty(), "no folded stacks");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack nanos` shape");
        assert!(!stack.is_empty() && !stack.contains('/'), "{line}");
        count.parse::<u64>().expect("integer self-time");
    }
    assert!(
        folded.lines().any(|l| l.starts_with("campaign")),
        "campaign span missing from:\n{folded}"
    );
    assert!(
        stderr.contains("wall-clock"),
        "no coverage note on stderr: {stderr}"
    );

    // diff of a trace against itself is all-zero deltas but keeps the shape
    let (diff, _, ok) = run(&[
        "trace",
        "diff",
        trace.to_str().unwrap(),
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "trace diff failed");
    assert!(diff.starts_with("span"), "no header row:\n{diff}");
    assert!(diff.lines().last().unwrap().starts_with("total attributed"));
    assert!(diff.contains("campaign"));

    // dropping the end record makes strict summarize exit non-zero with a
    // truncation diagnosis; --allow-partial downgrades it to a warning
    let text = std::fs::read_to_string(&trace).expect("trace file");
    let partial: String = text
        .lines()
        .filter(|l| !l.contains(r#""ev":"end""#))
        .map(|l| format!("{l}\n"))
        .collect();
    let cut = temp_path("flame_cut", "jsonl");
    std::fs::write(&cut, partial).expect("write truncated trace");
    let (_, stderr, ok) = run(&["trace", "summarize", cut.to_str().unwrap()]);
    assert!(!ok, "truncated trace must fail strict summarize");
    assert!(stderr.contains("truncated"), "{stderr}");
    assert!(stderr.contains("--allow-partial"), "{stderr}");
    let (partial_out, stderr, ok) = run(&[
        "trace",
        "summarize",
        "--allow-partial",
        cut.to_str().unwrap(),
    ]);
    assert!(ok, "--allow-partial must accept a prefix: {stderr}");
    assert!(stderr.contains("warning"), "{stderr}");
    assert!(partial_out.contains("faults:"), "{partial_out}");
    let _ = std::fs::remove_file(trace);
    let _ = std::fs::remove_file(cut);
}
