//! End-to-end integration: build → zone → worksheet → inject → validate,
//! across crate boundaries, on a small purpose-built design.

use soc_fmea::faultsim::{
    analyze, generate_fault_list, run_campaign, EnvironmentBuilder, FaultListConfig,
    OperationalProfile,
};
use soc_fmea::fmea::{
    census, extract_zones, predict_all_effects, sweep, validate, DiagnosticClaim, ExtractConfig,
    SensitivitySpec, ValidationConfig, Worksheet, ZoneGraph,
};
use soc_fmea::iec61508::{Sil, TechniqueId};
use soc_fmea::netlist::{Logic, Netlist};
use soc_fmea::rtl::RtlBuilder;
use soc_fmea::sim::{assign_bus, Workload};

/// A duplicated datapath with comparator — lockstep protection.
fn lockstep_design() -> Netlist {
    let mut r = RtlBuilder::new("lockstep");
    let _clk = r.clock_input("clk");
    let din = r.input_word("din", 8);
    r.push_block("main");
    let a = r.register("acc_a", &din, None, None);
    r.pop_block();
    r.push_block("shadow");
    let b = r.register("acc_b", &din, None, None);
    r.pop_block();
    let diff = r.xor(&a, &b);
    let alarm = r.or_reduce(&diff);
    r.output_word("dout", &a);
    r.output("alarm_cmp", alarm);
    r.finish().expect("valid design")
}

fn sweep_workload(nl: &Netlist, cycles: u64) -> Workload {
    let din: Vec<_> = (0..8)
        .map(|i| nl.net_by_name(&format!("din[{i}]")).unwrap())
        .collect();
    let mut w = Workload::new("sweep");
    for c in 0..cycles {
        let mut v = Vec::new();
        assign_bus(&mut v, &din, c.wrapping_mul(37) % 256);
        w.push_cycle(v);
    }
    w
}

#[test]
fn full_flow_on_lockstep_design() {
    let nl = lockstep_design();
    let zones = extract_zones(&nl, &ExtractConfig::default());
    assert!(zones.len() >= 5);

    // the comparator makes register faults detectable: claim it
    let mut ws = Worksheet::new(&zones);
    for name in ["main/acc_a", "shadow/acc_b"] {
        let id = zones.zone_by_name(name).expect("zone").id;
        ws.add_diagnostic(
            id,
            DiagnosticClaim::at_max(TechniqueId::RedundantComparator),
        );
    }
    let fmea = ws.compute();
    let sff = fmea.sff().expect("rates nonzero");
    assert!(
        sff > 0.80,
        "lockstep design must have a high SFF, got {sff}"
    );

    // injection campaign
    let w = sweep_workload(&nl, 24);
    let env = EnvironmentBuilder::new(&nl, &zones, &w)
        .alarms_matching("alarm_")
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(
        &env,
        &profile,
        &FaultListConfig {
            bitflips_per_zone: 8,
            ..FaultListConfig::default()
        },
    );
    let campaign = run_campaign(&env, &faults);
    assert!(campaign.coverage.sens_coverage() >= 0.99);

    // every register bit flip must be caught by the comparator
    let analysis = analyze(&faults, &campaign, &profile);
    let acc_a = zones.zone_by_name("main/acc_a").unwrap().id;
    let m = analysis.zone(acc_a).expect("measured");
    assert_eq!(
        m.dangerous_undetected, 0,
        "lockstep comparator must catch every flip"
    );

    // and the cross-check agrees with the worksheet
    let graph = ZoneGraph::build(&nl, &zones);
    let effects = predict_all_effects(&graph);
    let report = validate(
        &fmea,
        &effects,
        &analysis.measured,
        ValidationConfig::default(),
    );
    assert!(report.passed(), "{report}");
}

#[test]
fn unprotected_twin_fails_where_protected_succeeds() {
    // same design without the comparator output: flips become undetected
    let mut r = RtlBuilder::new("bare");
    let din = r.input_word("din", 8);
    let a = r.register("acc", &din, None, None);
    r.output_word("dout", &a);
    let nl = r.finish().unwrap();
    let zones = extract_zones(&nl, &ExtractConfig::default());
    let w = sweep_workload(&nl, 24);
    let env = EnvironmentBuilder::new(&nl, &zones, &w).build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(
        &env,
        &profile,
        &FaultListConfig {
            bitflips_per_zone: 8,
            stuckats_per_zone: 0,
            local_faults_per_zone: 0,
            wide_faults: 0,
            global_faults: false,
            ..FaultListConfig::default()
        },
    );
    let campaign = run_campaign(&env, &faults);
    let (_, _, dd, du) = campaign.outcome_counts();
    assert_eq!(dd, 0, "no diagnostics exist");
    assert!(du > 0, "flips must reach the output undetected");
}

#[test]
fn sensitivity_and_sil_work_across_crates() {
    let nl = lockstep_design();
    let zones = extract_zones(&nl, &ExtractConfig::default());
    let mut ws = Worksheet::new(&zones);
    ws.assume_all(|_z, a| {
        a.s_architectural = 0.8;
        a.diagnostics
            .push(DiagnosticClaim::at_max(TechniqueId::RedundantComparator));
    });
    let fmea = ws.compute();
    assert_eq!(fmea.sil(), Some(Sil::Sil3));
    let report = sweep(&ws, &SensitivitySpec::default());
    assert!(report.min_sff().unwrap() > 0.9);
}

#[test]
fn census_accounts_for_every_gate() {
    let nl = lockstep_design();
    let zones = extract_zones(&nl, &ExtractConfig::default());
    let c = census(&nl, &zones);
    assert_eq!(
        c.local_gates + c.wide_gates + c.unassigned_gates,
        nl.gate_count()
    );
    // effective gate counts are conserved across zones
    let eff_total: f64 = zones.zones().iter().map(|z| z.effective_gate_count).sum();
    let zoned = (c.local_gates + c.wide_gates) as f64;
    assert!(
        (eff_total - zoned).abs() < 1e-6,
        "apportioned gates {eff_total} must equal zoned gates {zoned}"
    );
}

#[test]
fn simulator_and_netlist_compose_through_the_facade() {
    let nl = lockstep_design();
    let mut sim = soc_fmea::sim::Simulator::new(&nl).unwrap();
    let din: Vec<_> = (0..8)
        .map(|i| nl.net_by_name(&format!("din[{i}]")).unwrap())
        .collect();
    sim.set_word(&din, 0xa5);
    sim.eval();
    sim.tick();
    let dout: Vec<_> = (0..8)
        .map(|i| nl.net_by_name(&format!("dout[{i}]")).unwrap())
        .collect();
    assert_eq!(sim.get_word(&dout), Some(0xa5));
    let alarm = nl.net_by_name("alarm_cmp").unwrap();
    assert_eq!(sim.get(alarm), Logic::Zero);
    // diverge the shadow register: the comparator must fire
    let acc_b0 = nl.net_by_name("acc_b[0]").unwrap();
    let soc_fmea::netlist::Driver::Dff(ff) = nl.net(acc_b0).driver else {
        panic!("register expected");
    };
    sim.flip_ff(ff);
    sim.eval();
    assert_eq!(sim.get(alarm), Logic::One);
}
