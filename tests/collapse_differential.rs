//! Differential tests: fault collapsing (`--collapse`,
//! `Campaign::collapse(true)`) produces bit-identical results to the
//! uncollapsed baseline on all four bundled example designs.
//!
//! These are the acceptance tests of the `FaultCollapser`: equivalence
//! collapsing plus fault-dictionary back-annotation is a pure execution
//! strategy — the campaign simulates one representative per class and
//! expands the rest from the dictionary, so outcomes, per-zone coverage
//! and measured DC/SFF must match exactly. Exercised on generated fault
//! lists (every fault kind) and on dense exhaustive stuck-at lists (where
//! collapsing actually bites), serial and sharded, and composed with the
//! accelerated engine.
//!
//! Kept deliberately small (reduced memory size, strided stuck-at lists)
//! so the suite stays fast in debug builds; the CI `collapse-differential`
//! job also runs it under `--release` together with a
//! `bench_collapse --quick` smoke run.

use soc_fmea::faultsim::{
    generate_fault_list, Campaign, CampaignResult, EnvironmentBuilder, Fault, FaultKind,
    FaultListConfig, OperationalProfile,
};
use soc_fmea::fmea::extract_zones;
use soc_fmea::mcu::{build_mcu, fmea as mcu_fmea, programs, rtl::run_workload, McuConfig, McuPins};
use soc_fmea::memsys::{
    certification_workload, fmea as memsys_fmea, rtl, MemSysConfig, MemSysPins,
};
use soc_fmea::netlist::{Driver, Logic, NetId, Netlist};
use soc_fmea::sim::Workload;

/// A fault list exercising every fault kind, small enough for debug builds.
fn fault_config() -> FaultListConfig {
    FaultListConfig {
        bitflips_per_zone: 2,
        stuckats_per_zone: 1,
        local_faults_per_zone: 1,
        wide_faults: 4,
        bridge_faults: 3,
        global_faults: true,
        skip_inactive_zones: true,
        collapse: false,
        seed: 2007,
    }
}

/// A strided exhaustive stuck-at list: both polarities on every `stride`-th
/// driven, non-constant net, capped so debug builds stay fast. Dense enough
/// that equivalence classes actually form.
fn strided_stuck_list(netlist: &Netlist, stride: usize, cap: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        if i % stride != 0 || matches!(net.driver, Driver::None | Driver::Const(_)) {
            continue;
        }
        for value in [Logic::Zero, Logic::One] {
            faults.push(Fault {
                kind: FaultKind::StuckAt {
                    net: NetId::from_index(i),
                    value,
                },
                zone: None,
                inject_cycle: 0,
                label: format!("stuck {}-sa{value}", net.name),
            });
        }
        if faults.len() >= cap {
            break;
        }
    }
    faults
}

/// Runs baseline and collapsed campaigns over the same environment and
/// asserts bit-identity, serial, sharded and composed with `--accel`.
fn assert_differential(
    design: &str,
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    workload: &Workload,
    sw_test_window: Option<(usize, usize)>,
) {
    let env = EnvironmentBuilder::new(netlist, zones, workload)
        .alarms_matching("alarm_")
        .sw_test_window(sw_test_window)
        .build();
    let profile = OperationalProfile::collect(&env);
    let generated = generate_fault_list(&env, &profile, &fault_config());
    assert!(!generated.is_empty(), "{design}: empty fault list");
    let stuck = strided_stuck_list(netlist, 5, 120);
    assert!(!stuck.is_empty(), "{design}: empty stuck-at list");

    for (list_name, faults) in [("generated", &generated), ("stuck-at", &stuck)] {
        let baseline: CampaignResult = Campaign::new(&env, faults).run();
        // Serial-vs-sharded collapse identity is covered by the campaign
        // unit tests and `prop_collapse`; here one sharded run per list
        // keeps the debug-build suite affordable.
        let collapsed = Campaign::new(&env, faults).collapse(true).threads(2).run();
        assert_eq!(
            baseline, collapsed,
            "{design}/{list_name}: collapsed result diverges"
        );
        let composed = Campaign::new(&env, faults)
            .collapse(true)
            .accelerated(true)
            .checkpoint_interval(16)
            .threads(2)
            .run();
        assert_eq!(
            baseline, composed,
            "{design}/{list_name}: collapse+accel result diverges"
        );
        // DC / SFF / coverage ride on the outcomes, but assert them
        // explicitly — they are the safety measurements the paper reports.
        assert_eq!(baseline.measured_dc(), composed.measured_dc());
        assert_eq!(baseline.measured_sff(), composed.measured_sff());
        assert_eq!(baseline.coverage, composed.coverage);
    }
}

fn memsys_differential(cfg: MemSysConfig, design: &str) {
    let netlist = rtl::build_netlist(&cfg).expect("valid memsys netlist");
    let zones = extract_zones(&netlist, &memsys_fmea::extract_config());
    let pins = MemSysPins::find(&netlist, &cfg);
    let cert = certification_workload(&pins, &cfg);
    assert_differential(
        design,
        &netlist,
        &zones,
        &cert.workload,
        cert.sw_test_window,
    );
}

fn mcu_differential(cfg: McuConfig, design: &str) {
    let netlist = build_mcu(&cfg).expect("valid mcu netlist");
    let zones = extract_zones(&netlist, &mcu_fmea::extract_config());
    let pins = McuPins::find(&netlist);
    let workload = run_workload(&pins, 48);
    assert_differential(design, &netlist, &zones, &workload, None);
}

#[test]
fn fmem_hardened_collapsed_matches_baseline() {
    memsys_differential(MemSysConfig::hardened().with_words(8), "fmem");
}

#[test]
fn fmem_baseline_collapsed_matches_baseline() {
    memsys_differential(MemSysConfig::baseline().with_words(8), "fmem-baseline");
}

#[test]
fn mcu_lockstep_collapsed_matches_baseline() {
    mcu_differential(McuConfig::lockstep(programs::checksum_loop()), "mcu");
}

#[test]
fn mcu_single_collapsed_matches_baseline() {
    mcu_differential(McuConfig::single(programs::checksum_loop()), "mcu-single");
}
