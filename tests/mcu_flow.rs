//! Integration: the fault-robust microcontroller through the facade —
//! FMEA, injection and the single-vs-lockstep contrast in one flow.

use soc_fmea::faultsim::{
    analyze, generate_fault_list, run_campaign, EnvironmentBuilder, FaultListConfig,
    OperationalProfile,
};
use soc_fmea::fmea::{extract_zones, predict_all_effects, validate, ValidationConfig, ZoneGraph};
use soc_fmea::mcu::rtl::run_workload;
use soc_fmea::mcu::{build_mcu, fmea as mcu_fmea, programs, McuConfig, McuPins};

fn campaign_dc(cfg: &McuConfig) -> (Option<f64>, bool) {
    let nl = build_mcu(cfg).expect("valid mcu");
    let zones = extract_zones(&nl, &mcu_fmea::extract_config());
    let pins = McuPins::find(&nl);
    let w = run_workload(&pins, 40);
    let env = EnvironmentBuilder::new(&nl, &zones, &w)
        .alarms_matching("alarm_")
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(
        &env,
        &profile,
        &FaultListConfig {
            bitflips_per_zone: 8,
            stuckats_per_zone: 0,
            local_faults_per_zone: 0,
            wide_faults: 0,
            bridge_faults: 0,
            global_faults: false,
            seed: 2007,
            ..FaultListConfig::default()
        },
    );
    let result = run_campaign(&env, &faults);

    // validation cross-check against the worksheet
    let fmea = mcu_fmea::build_worksheet(&zones, cfg).compute();
    let analysis = analyze(&faults, &result, &profile);
    let graph = ZoneGraph::build(&nl, &zones);
    let effects = predict_all_effects(&graph);
    let report = validate(
        &fmea,
        &effects,
        &analysis.measured,
        ValidationConfig {
            ddf_tolerance: 0.25,
            ..ValidationConfig::default()
        },
    );
    (result.measured_dc(), report.passed())
}

#[test]
fn lockstep_campaign_dc_dominates_single_core() {
    let program = programs::register_exerciser();
    let (single_dc, _) = campaign_dc(&McuConfig::single(program.clone()));
    let (lockstep_dc, lockstep_valid) = campaign_dc(&McuConfig::lockstep(program));
    // the single core has no diagnostics at all
    assert_eq!(single_dc, Some(0.0));
    // the comparator catches state corruption
    assert!(lockstep_dc.unwrap() > 0.8, "lockstep DC {lockstep_dc:?}");
    assert!(
        lockstep_valid,
        "lockstep FMEA must survive its own campaign"
    );
}

#[test]
fn mcu_worksheet_totals_are_consistent() {
    let cfg = McuConfig::lockstep(programs::counter(7));
    let nl = build_mcu(&cfg).expect("valid mcu");
    let zones = extract_zones(&nl, &mcu_fmea::extract_config());
    let fmea = mcu_fmea::build_worksheet(&zones, &cfg).compute();
    // λ bookkeeping: zone totals sum to the SoC total
    let mut sum = soc_fmea::iec61508::LambdaBreakdown::default();
    for t in &fmea.zone_totals {
        sum.accumulate(t);
    }
    assert!((sum.total().0 - fmea.total.total().0).abs() < 1e-9);
    // the two cores are symmetric: identical zone λ for pc/acc pairs
    let du = |name: &str| {
        fmea.zone_totals[zones.zone_by_name(name).unwrap().id.index()]
            .dangerous_undetected
            .0
    };
    assert!((du("core0/core0_acc") - du("core1/core1_acc")).abs() < 1e-12);
    assert!((du("core0/core0_pc") - du("core1/core1_pc")).abs() < 1e-12);
}

#[test]
fn iso26262_reading_tracks_the_lockstep_gain() {
    let program = programs::checksum_loop();
    let metrics = |cfg: &McuConfig| {
        let nl = build_mcu(cfg).unwrap();
        let zones = extract_zones(&nl, &mcu_fmea::extract_config());
        mcu_fmea::build_worksheet(&zones, cfg)
            .compute()
            .automotive_metrics()
            .expect("nonzero rates")
    };
    let single = metrics(&McuConfig::single(program.clone()));
    let dual = metrics(&McuConfig::lockstep(program));
    assert!(
        dual.spfm > single.spfm + 0.2,
        "lockstep lifts SPFM substantially"
    );
    assert!(dual.achievable_asil() > single.achievable_asil());
}
