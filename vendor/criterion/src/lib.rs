//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this std-only shim under the `criterion` name. It is a
//! real (if minimal) wall-clock harness: each benchmark is timed over
//! auto-scaled iteration batches and reported as `min/mean/max` per
//! iteration plus throughput when declared. It produces no HTML reports and
//! does no statistical outlier analysis.
//!
//! Tuning knobs (environment): `CRITERION_SAMPLE_MS` — target milliseconds
//! per sample batch (default 100); `CRITERION_SAMPLES` — batches per
//! benchmark (default 5, floored at 2).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Passed to every benchmark closure; [`iter`](Bencher::iter) runs and
/// times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    target_sample: Duration,
}

impl Bencher {
    fn new(sample_count: usize, target_sample: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
            target_sample,
        }
    }

    /// Times `f`, auto-scaling the batch size so one sample lasts roughly
    /// the target duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // calibration: time single calls, growing until measurable
        let mut calib = Duration::ZERO;
        let mut calls = 0u64;
        while calib < Duration::from_millis(1) && calls < 1 << 20 {
            let batch = calls.clamp(1, 1 << 12);
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            calib = t0.elapsed();
            calls = calls.saturating_mul(2).max(batch);
            if calib >= self.target_sample {
                // a single calibration batch already exceeds one sample:
                // use it as the measurement and continue with batch size 1
                self.iters_per_sample = batch;
                self.samples.push(calib / batch as u32);
                break;
            }
        }
        if self.samples.is_empty() {
            let per_iter = calib
                .checked_div(calls.min(1 << 12) as u32)
                .unwrap_or(calib);
            let per_iter_ns = per_iter.as_nanos().max(1) as u64;
            self.iters_per_sample =
                (self.target_sample.as_nanos() as u64 / per_iter_ns).clamp(1, 1 << 24);
        }
        while self.samples.len() < self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} no samples collected");
        return;
    }
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = |per_iter: Duration, n: u64| {
        let secs = per_iter.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            n as f64 / secs
        }
    };
    let thr = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", rate(mean, n)),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", rate(mean, n)),
        None => String::new(),
    };
    println!(
        "{id:<40} [{} {} {}]{thr}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's sample count comes from
    /// `CRITERION_SAMPLES`.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&id, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_count: env_u64("CRITERION_SAMPLES", 5).max(2) as usize,
            target_sample: Duration::from_millis(env_u64("CRITERION_SAMPLE_MS", 100)),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(&id, None, f);
        self
    }

    fn run_one<F>(&self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_count, self.target_sample);
        f(&mut b);
        report(id, &b.samples, throughput);
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0, "workload never executed");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
