//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this std-only shim under the `rand` name. It covers
//! exactly the API surface the workspace uses — [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] /
//! [`Rng::random_bool`], and [`seq::SliceRandom`] — with a deterministic
//! SplitMix64 generator.
//!
//! Determinism contract: for a fixed seed the stream is stable across
//! platforms and releases of this workspace. It intentionally does **not**
//! match the upstream `rand` stream; seeded artefacts (fault lists, sampled
//! campaigns) are reproducible against this shim only.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds give
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        // 53 significant bits, same construction as uniform f64 in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// Fast, passes BigCrush for the purposes of fault-list sampling, and —
    /// most importantly here — trivially reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(2007);
        let mut b = StdRng::seed_from_u64(2007);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=5u8);
            assert!(w <= 5);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
