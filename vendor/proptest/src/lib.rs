//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this std-only shim under the `proptest` name. It
//! implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, typed
//!   parameters (`x: u8` ⇒ [`arbitrary::any`]) and `pat in strategy`
//!   parameters,
//! * strategies: integer ranges, tuples, [`collection::vec`],
//!   [`strategy::Strategy::prop_map`], [`prop_oneof!`], [`strategy::Just`],
//!   and string generation from a small regex subset,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`].
//!
//! Differences from upstream, deliberately accepted: no shrinking (the
//! failing case is reported as-is), and case generation is seeded from the
//! test's module path so every run of a given test binary replays the same
//! inputs. `PROPTEST_CASES` overrides the case count, as upstream.

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case number `case` of test `name` — a pure
        /// function of both, so failures replay.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (`n` > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Marker returned by [`prop_assume!`](crate::prop_assume) rejections:
    /// the case does not count, another is generated.
    #[derive(Debug)]
    pub struct Rejected;

    /// Run configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// The effective case count: the `PROPTEST_CASES` environment
        /// variable overrides the configured value.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; this shim trades a shorter default
            // for test-suite latency. Override per block with
            // `#![proptest_config(ProptestConfig::with_cases(n))]` or
            // globally with PROPTEST_CASES.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between alternatives of the same value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // printable ASCII keeps generated names/labels readable
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }

    /// The full-domain strategy of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of `elem` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String generation from a small regex subset: literals, `[...]`
    //! character classes with ranges, and the quantifiers `{n}`, `{m,n}`,
    //! `?`, `*`, `+` (unbounded repetition capped at 8).

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match chars.next() {
                None => panic!("unterminated character class in pattern"),
                Some(']') => break,
                Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    assert!(lo <= hi, "bad class range {lo}-{hi}");
                    set.extend((lo..=hi).filter(|c| *c != '-'));
                }
                Some('\\') => {
                    if let Some(p) = prev.replace(chars.next().expect("escape at end")) {
                        set.push(p);
                    }
                }
                Some(c) => {
                    if let Some(p) = prev.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            set.push(p);
        }
        assert!(!set.is_empty(), "empty character class in pattern");
        set
    }

    fn parse_counts(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad {m,n} in pattern"),
                n.trim().parse().expect("bad {m,n} in pattern"),
            ),
            None => {
                let n = spec.trim().parse().expect("bad {n} in pattern");
                (n, n)
            }
        }
    }

    /// Generates one string matching `pattern` (within the supported
    /// subset).
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().expect("escape at end of pattern")),
                c => Atom::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_counts(&mut chars)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring
    //! `proptest::prelude::*` upstream.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests; see the crate docs for the
/// supported parameter forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let __max_attempts = __cases.saturating_mul(16).max(1);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cases && __attempts < __max_attempts {
                __attempts += 1;
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempts,
                );
                #[allow(clippy::redundant_closure_call)]
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    { $body }
                    Ok(())
                })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
            assert!(
                __accepted >= __cases,
                "proptest: only {__accepted}/{__cases} cases accepted \
                 (too many prop_assume! rejections)"
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is regenerated, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn typed_and_strategy_params(v: u64, w in 1usize..=64) {
            prop_assert!((1..=64).contains(&w));
            let _ = v;
        }

        #[test]
        fn vec_lengths_respect_bounds(items in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&items.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|x| x * 2),
                (100u32..110).prop_map(|x| x + 1),
            ],
        ) {
            prop_assert!(v < 20 || (101..111).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u8..4, b in 0u8..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn pattern_strings_match_shape(base in "[a-z][a-z0-9_]{0,10}") {
            prop_assert!(!base.is_empty() && base.len() <= 11);
            let mut cs = base.chars();
            prop_assert!(cs.next().unwrap().is_ascii_lowercase());
            prop_assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 1);
        let mut b = crate::test_runner::TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
