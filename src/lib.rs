//! # soc-fmea — SoC-level FMEA for IEC 61508 compliance
//!
//! An open reproduction of *"Using an innovative SoC-level FMEA methodology
//! to design in compliance with IEC61508"* (R. Mariani, G. Boschi,
//! F. Colucci — DATE 2007): a complete flow to decompose a digital design
//! into **sensible zones**, compute the IEC 61508 metrics (**Safe Failure
//! Fraction**, **Diagnostic Coverage**, SIL grant), and validate the
//! analysis with a deterministic **fault-injection** environment.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `socfmea-netlist` | gate-level IR, Verilog subset, logic cones, correlation |
//! | [`rtl`] | `socfmea-rtl` | word-level RTL builder elaborating to gates |
//! | [`sim`] | `socfmea-sim` | four-state cycle simulator, toggle coverage, fault hooks |
//! | [`iec61508`] | `socfmea-iec61508` | SIL/HFT/SFF tables, Annex A techniques, failure modes |
//! | [`fmea`] | `socfmea-core` | zones, worksheet, SFF/DC, ranking, sensitivity, validation |
//! | [`faultsim`] | `socfmea-faultsim` | injection environment, monitors, permanent-fault simulator |
//! | [`accel`] | `socfmea-accel` | golden traces, checkpoints, divergence-set fault simulation |
//! | [`obs`] | `socfmea-obs` | spans, metrics registry, JSONL fault traces, live progress |
//! | [`lint`] | `socfmea-lint` | static safety lints over netlist, zones, and worksheet |
//! | [`serve`] | `socfmea-serve` | multi-tenant campaign server, artifact cache, live streaming |
//! | [`memsys`] | `socfmea-memsys` | the paper's fault-robust memory sub-system (Figure 5) |
//! | [`mcu`] | `socfmea-mcu` | the fault-robust lockstep microcontroller substrate |
//!
//! # Quickstart
//!
//! ```
//! use soc_fmea::fmea::{extract_zones, DiagnosticClaim, ExtractConfig, Worksheet};
//! use soc_fmea::iec61508::TechniqueId;
//! use soc_fmea::rtl::RtlBuilder;
//!
//! // 1. describe (or import) a design
//! let mut r = RtlBuilder::new("soc");
//! let d = r.input_word("din", 8);
//! let q = r.register("state", &d, None, None);
//! r.output_word("dout", &q);
//! let netlist = r.finish()?;
//!
//! // 2. extract sensible zones, 3. fill the worksheet, 4. compute
//! let zones = extract_zones(&netlist, &ExtractConfig::default());
//! let mut ws = Worksheet::new(&zones);
//! let state = zones.zone_by_name("state").unwrap().id;
//! ws.add_diagnostic(state, DiagnosticClaim::at_max(TechniqueId::RamEcc));
//! let result = ws.compute();
//! println!("SFF = {:.2}%  ->  {:?}", result.sff().unwrap() * 100.0, result.sil());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for the full memory-sub-system certification flow and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper (documented in `EXPERIMENTS.md`).

pub mod cli;
pub mod prelude;

/// Gate-level netlist IR, structural Verilog, cones and correlation.
pub use socfmea_netlist as netlist;

/// Word-level RTL construction and elaboration.
pub use socfmea_rtl as rtl;

/// Cycle-based four-state simulation with fault hooks.
pub use socfmea_sim as sim;

/// IEC 61508 data model (SIL, DC levels, Annex A, failure modes).
pub use socfmea_iec61508 as iec61508;

/// The FMEA engine: zones, worksheet, SFF/DC, sensitivity, validation.
pub use socfmea_core as fmea;

/// The fault-injection environment and permanent-fault simulator.
pub use socfmea_faultsim as faultsim;

/// The checkpointed incremental fault-simulation engine behind
/// [`Engine::Sparse`](faultsim::Engine::Sparse).
pub use socfmea_accel as accel;

/// Static testability analysis: ternary constant propagation, SCOAP
/// controllability/observability, and the proven-undetectable fault
/// classifier behind `inject --prune` and `analyze`'s testability tables.
pub use socfmea_static as static_analysis;

/// Structured tracing, metrics, and live campaign telemetry: hierarchical
/// spans, a thread-safe counter/gauge/histogram registry, the JSONL trace
/// sink behind `inject --trace-out`, and its offline re-aggregation.
pub use socfmea_obs as obs;

/// Clippy-style static safety lints (structural + worksheet rule packs).
pub use socfmea_lint as lint;

/// The multi-tenant campaign server behind `socfmea serve`: design-keyed
/// artifact caching, tenant-fair scheduling, live JSONL result streaming,
/// and the thin client behind `socfmea submit|status|watch|cancel`.
pub use socfmea_serve as serve;

/// The paper's fault-robust memory sub-system example.
pub use socfmea_memsys as memsys;

/// The fault-robust (lockstep) microcontroller substrate.
pub use socfmea_mcu as mcu;
