//! Typed argument handling for the `socfmea` command-line tool.
//!
//! Each subcommand parses into its own options struct, so the binary's
//! `main` is a thin dispatcher and the parsing rules are unit-testable
//! without spawning processes:
//!
//! * `socfmea zones <netlist.v>` → [`ZonesOptions`],
//! * `socfmea analyze <netlist.v>` → [`AnalyzeOptions`],
//! * `socfmea inject <netlist.v>` → [`InjectOptions`].
//!
//! [`parse`] turns `std::env::args` (minus the program name) into a
//! [`Command`]; errors carry a message for stderr, and the caller prints
//! [`USAGE`].

use socfmea_core::extract::ExtractConfig;
use socfmea_iec61508::{ComponentClass, Hft, SubsystemType};

/// The usage string printed on argument errors.
pub const USAGE: &str = "usage: socfmea <zones|analyze|inject> <netlist.v> [options]
  zones   <netlist.v>   list the extracted sensible zones
  analyze <netlist.v>   run the FMEA and print the report
  inject  <netlist.v>   run a fault-injection campaign, print measured DC/SFF

common options:
  --class <prefix>=<class>   classify zones under a block-path prefix
                             (memory|rom|cpu|bus|io|clock|power)
analyze options:
  --hft <n>                  hardware fault tolerance for the SIL grant
  --type-a                   assess as a type-A subsystem (default: B)
  --format text|csv|srs      report format (default: text)
inject options:
  --threads <n>              campaign worker threads (default: host cores, max 8)
  --seed <s>                 fault-list sampling seed (default: 0x5eed)
  --cycles <n>               synthetic workload length in cycles (default: 48)";

/// A parsed command line: one variant per subcommand.
#[derive(Debug)]
pub enum Command {
    /// `socfmea zones`.
    Zones(ZonesOptions),
    /// `socfmea analyze`.
    Analyze(AnalyzeOptions),
    /// `socfmea inject`.
    Inject(InjectOptions),
}

/// Options of `socfmea zones`.
#[derive(Debug)]
pub struct ZonesOptions {
    /// Path of the Verilog netlist.
    pub input: String,
    /// Zone-extraction configuration (classification prefixes applied).
    pub config: ExtractConfig,
}

/// Report format of `socfmea analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable worksheet.
    Text,
    /// Machine-readable rows.
    Csv,
    /// Safety Requirements Specification draft.
    Srs,
}

/// Options of `socfmea analyze`.
#[derive(Debug)]
pub struct AnalyzeOptions {
    /// Path of the Verilog netlist.
    pub input: String,
    /// Zone-extraction configuration.
    pub config: ExtractConfig,
    /// Hardware fault tolerance assumed for the SIL grant.
    pub hft: Hft,
    /// Type-A or type-B subsystem assessment.
    pub subsystem: SubsystemType,
    /// Output format.
    pub format: ReportFormat,
}

/// Options of `socfmea inject`.
#[derive(Debug)]
pub struct InjectOptions {
    /// Path of the Verilog netlist.
    pub input: String,
    /// Zone-extraction configuration.
    pub config: ExtractConfig,
    /// Campaign worker threads.
    pub threads: usize,
    /// Fault-list sampling seed.
    pub seed: u64,
    /// Length of the synthetic stimulus, in cycles.
    pub cycles: usize,
}

fn parse_class(name: &str) -> Option<ComponentClass> {
    Some(match name {
        "memory" | "ram" => ComponentClass::VariableMemory,
        "rom" | "flash" => ComponentClass::InvariableMemory,
        "cpu" | "processing" => ComponentClass::ProcessingUnit,
        "bus" => ComponentClass::Bus,
        "io" => ComponentClass::InputOutput,
        "clock" => ComponentClass::Clock,
        "power" => ComponentClass::PowerSupply,
        _ => return None,
    })
}

/// The default `--threads` value: host parallelism, capped at 8.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Parses the argument list (program name already stripped).
///
/// # Errors
///
/// Returns a message suitable for stderr when the command line is invalid;
/// callers should follow it with [`USAGE`].
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing command")?.clone();
    let input = it.next().ok_or("missing input file")?.clone();
    let mut config = ExtractConfig::default();
    let mut hft = Hft(0);
    let mut subsystem = SubsystemType::B;
    let mut format = ReportFormat::Text;
    let mut threads = default_threads();
    let mut seed = 0x5eed;
    let mut cycles = 48usize;

    // option validity per subcommand
    let is_analyze = command == "analyze";
    let is_inject = command == "inject";
    if !matches!(command.as_str(), "zones" | "analyze" | "inject") {
        return Err(format!("unknown command `{command}`"));
    }

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--class" => {
                let spec = it.next().ok_or("--class needs <prefix>=<class>")?;
                let (prefix, class) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --class spec `{spec}`"))?;
                let class = parse_class(class).ok_or_else(|| format!("unknown class `{class}`"))?;
                config = config.classify(prefix, class);
            }
            "--hft" if is_analyze => {
                let n = it.next().ok_or("--hft needs a number")?;
                hft = Hft(n.parse().map_err(|_| format!("bad HFT `{n}`"))?);
            }
            "--type-a" if is_analyze => subsystem = SubsystemType::A,
            "--format" if is_analyze => {
                let f = it.next().ok_or("--format needs a value")?;
                format = match f.as_str() {
                    "text" => ReportFormat::Text,
                    "csv" => ReportFormat::Csv,
                    "srs" => ReportFormat::Srs,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--threads" if is_inject => {
                let n = it.next().ok_or("--threads needs a number")?;
                threads = n.parse().map_err(|_| format!("bad thread count `{n}`"))?;
            }
            "--seed" if is_inject => {
                let s = it.next().ok_or("--seed needs a number")?;
                seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--cycles" if is_inject => {
                let n = it.next().ok_or("--cycles needs a number")?;
                cycles = n.parse().map_err(|_| format!("bad cycle count `{n}`"))?;
                if cycles == 0 {
                    return Err("--cycles must be at least 1".into());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    Ok(match command.as_str() {
        "zones" => Command::Zones(ZonesOptions { input, config }),
        "analyze" => Command::Analyze(AnalyzeOptions {
            input,
            config,
            hft,
            subsystem,
            format,
        }),
        "inject" => Command::Inject(InjectOptions {
            input,
            config,
            threads,
            seed,
            cycles,
        }),
        _ => unreachable!("validated above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn zones_parses_with_classification() {
        let cmd = parse(&argv(&["zones", "d.v", "--class", "mem=memory"])).unwrap();
        let Command::Zones(o) = cmd else {
            panic!("zones expected")
        };
        assert_eq!(o.input, "d.v");
    }

    #[test]
    fn analyze_parses_all_options() {
        let cmd = parse(&argv(&[
            "analyze", "d.v", "--hft", "1", "--type-a", "--format", "csv",
        ]))
        .unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("analyze expected")
        };
        assert_eq!(o.hft, Hft(1));
        assert_eq!(o.subsystem, SubsystemType::A);
        assert_eq!(o.format, ReportFormat::Csv);
    }

    #[test]
    fn inject_parses_threads_seed_cycles() {
        let cmd = parse(&argv(&[
            "inject",
            "d.v",
            "--threads",
            "4",
            "--seed",
            "7",
            "--cycles",
            "16",
        ]))
        .unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.threads, 4);
        assert_eq!(o.seed, 7);
        assert_eq!(o.cycles, 16);
    }

    #[test]
    fn inject_defaults_are_sensible() {
        let cmd = parse(&argv(&["inject", "d.v"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert!(o.threads >= 1);
        assert_eq!(o.seed, 0x5eed);
        assert_eq!(o.cycles, 48);
    }

    #[test]
    fn subcommand_scoping_rejects_foreign_options() {
        // analyze-only options are rejected under zones/inject and vice versa
        assert!(parse(&argv(&["zones", "d.v", "--hft", "1"])).is_err());
        assert!(parse(&argv(&["inject", "d.v", "--format", "csv"])).is_err());
        assert!(parse(&argv(&["analyze", "d.v", "--threads", "4"])).is_err());
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(parse(&[]).unwrap_err().contains("missing command"));
        assert!(parse(&argv(&["zones"]))
            .unwrap_err()
            .contains("missing input"));
        assert!(parse(&argv(&["frobnicate", "x.v"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv(&["analyze", "d.v", "--format", "pdf"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(parse(&argv(&["inject", "d.v", "--cycles", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv(&["zones", "d.v", "--class", "broken"]))
            .unwrap_err()
            .contains("bad --class"));
    }
}
