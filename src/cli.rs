//! Typed argument handling for the `socfmea` command-line tool.
//!
//! Each subcommand parses into its own options struct, so the binary's
//! `main` is a thin dispatcher and the parsing rules are unit-testable
//! without spawning processes:
//!
//! * `socfmea zones <netlist.v>` → [`ZonesOptions`],
//! * `socfmea analyze <netlist.v>` → [`AnalyzeOptions`],
//! * `socfmea inject [<netlist.v>]` → [`InjectOptions`],
//! * `socfmea lint [<netlist.v>]` → [`LintOptions`],
//! * `socfmea trace summarize|flame <trace.jsonl>` → [`TraceOptions`],
//! * `socfmea trace diff <a.jsonl> <b.jsonl>` → [`TraceDiffOptions`],
//! * `socfmea serve` → [`ServeOptions`],
//! * `socfmea submit [<netlist.v>]` → [`SubmitOptions`],
//! * `socfmea status|watch|cancel <job>` → [`JobRefOptions`],
//! * `socfmea shutdown` → [`ShutdownOptions`].
//!
//! [`parse`] turns `std::env::args` (minus the program name) into a
//! [`Command`]; errors carry a message for stderr, and the caller prints
//! [`USAGE`].

use socfmea_core::extract::ExtractConfig;
use socfmea_faultsim::{Collapse, Engine, Prune};
use socfmea_iec61508::{ComponentClass, Hft, Sil, SubsystemType};

/// The default campaign-server address.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7171";

/// The usage string printed on argument errors.
pub const USAGE: &str = "usage: socfmea <zones|analyze|inject|lint|trace|serve|submit|status|watch|cancel|shutdown> [<netlist.v>] [options]
  zones   <netlist.v>   list the extracted sensible zones
  analyze <netlist.v>   run the FMEA with per-zone testability tables
                        (or --example <design>)
  inject  <netlist.v>   run a fault-injection campaign, print measured DC/SFF
                        (or --example <design>)
  lint    <netlist.v>   run the structural safety lints (or --example <design>)
  trace summarize <trace.jsonl>
                        re-aggregate a --trace-out file into summary tables
                        (non-zero exit on a truncated trace unless
                        --allow-partial)
  trace flame <trace.jsonl>
                        span self-times as folded stacks for flamegraph
                        tooling (coverage note on stderr)
  trace diff <a.jsonl> <b.jsonl>
                        compare two traces' span self-times, largest
                        absolute delta first
  serve                 run the multi-tenant campaign server
  submit  <netlist.v>   submit a campaign to a server (or --example <design>)
  status  <job>         query a submitted job
  watch   <job>         stream a job's live JSONL trace to stdout
                        (--events streams the progress channel instead)
  cancel  <job>         cancel a queued or running job cooperatively
  shutdown              drain and stop a campaign server

common options:
  --class <prefix>=<class>   classify zones under a block-path prefix
                             (memory|rom|cpu|bus|io|clock|power)
analyze options:
  --hft <n>                  hardware fault tolerance for the SIL grant
  --type-a                   assess as a type-A subsystem (default: B)
  --format text|csv|srs|json report format (default: text)
  --example <design>         analyze a bundled design instead of a netlist
                             file (fmem|fmem-baseline|mcu|mcu-single)
inject options:
  --threads <n>              campaign worker threads (default: host cores, max 8)
  --seed <s>                 fault-list sampling seed (default: 0x5eed)
  --cycles <n>               synthetic workload length in cycles (default: 48)
  --engine <e>               campaign execution engine (auto|lockstep|sparse|
                             ppsfp); every engine yields the bit-identical
                             result (default: auto — ppsfp for all-stuck-at
                             lists, sparse otherwise)
  --accel                    deprecated alias for --engine sparse
  --checkpoint-interval <n>  golden-trace checkpoint spacing for the sparse
                             engine (default: 16)
  --collapse                 simulate one representative per equivalence
                             class, back-annotate the rest (bit-identical)
  --prune                    statically prove faults undetectable and skip
                             their simulation (bit-identical)
  --example <design>         inject into a bundled design instead of a
                             netlist file (fmem|fmem-baseline|mcu|mcu-single)
  --trace-out <f.jsonl>      stream one JSONL record per fault (plus span,
                             phase, and end-of-run records) to a file
  --metrics-out <f.json>     write the metrics-registry snapshot as JSON
  --progress                 live progress line on stderr (faults/s, ETA,
                             running DC/SFF, per-outcome counts)
  --quiet                    suppress the stderr stats and progress lines
lint options:
  --example <design>         lint a bundled design instead of a netlist file
                             (fmem|fmem-baseline|mcu|mcu-single)
  --format text|json         report format (default: text)
  --deny warnings            promote every warning to an error
  --deny <SLxxxx>            promote one rule's findings to errors (repeatable)
  --allow <SLxxxx>           drop one rule's findings (repeatable)
  --target-sil <n>           check SIL reachability (enables SL0103)
serve options:
  --addr <host:port>         listen address (default: 127.0.0.1:7171)
  --workers <n>              concurrent campaign workers (default: 2)
  --queue <n>                queued-job cap before 429 (default: 64)
  --cache-mb <n>             artifact-cache byte budget in MiB (default: 256)
  --no-telemetry             skip per-job spans, progress samples, and
                             labeled metrics (lifecycle events remain)
submit options (plus --seed/--cycles/--engine/--checkpoint-interval/
                --collapse/--prune as for inject):
  --addr <host:port>         server address (default: 127.0.0.1:7171)
  --tenant <name>            tenant the job queues under (default: default)
  --threads <n>              campaign threads (default: 0 — server default;
                             results do not depend on the thread count)
  --example <design>         submit a bundled design instead of a netlist
                             file (fmem|fmem-baseline|mcu|mcu-single)
  --watch                    stream the job's trace to stdout until it ends
status/watch/cancel/shutdown options:
  --addr <host:port>         server address (default: 127.0.0.1:7171)
  --events                   (watch only) stream /v1/jobs/<id>/events —
                             lifecycle, progress, and span records";

/// A parsed command line: one variant per subcommand.
#[derive(Debug)]
pub enum Command {
    /// `socfmea zones`.
    Zones(ZonesOptions),
    /// `socfmea analyze`.
    Analyze(AnalyzeOptions),
    /// `socfmea inject`.
    Inject(InjectOptions),
    /// `socfmea lint`.
    Lint(LintOptions),
    /// `socfmea trace summarize`.
    TraceSummarize(TraceOptions),
    /// `socfmea trace flame`.
    TraceFlame(TraceOptions),
    /// `socfmea trace diff`.
    TraceDiff(TraceDiffOptions),
    /// `socfmea serve`.
    Serve(ServeOptions),
    /// `socfmea submit`.
    Submit(SubmitOptions),
    /// `socfmea status`.
    Status(JobRefOptions),
    /// `socfmea watch`.
    Watch(JobRefOptions),
    /// `socfmea cancel`.
    Cancel(JobRefOptions),
    /// `socfmea shutdown`.
    Shutdown(ShutdownOptions),
}

/// Options of `socfmea serve`.
#[derive(Debug)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Concurrent campaign workers.
    pub workers: usize,
    /// Queued-job cap before submissions draw 429.
    pub queue: usize,
    /// Artifact-cache byte budget, in MiB.
    pub cache_mb: usize,
    /// Per-job telemetry (spans, progress samples, labeled metrics);
    /// `--no-telemetry` turns it off, lifecycle events remain.
    pub telemetry: bool,
}

/// Options of `socfmea submit`.
#[derive(Debug)]
pub struct SubmitOptions {
    /// Server address.
    pub addr: String,
    /// Tenant the job queues under.
    pub tenant: String,
    /// Path of the Verilog netlist; `None` when submitting an example.
    pub input: Option<String>,
    /// A bundled example design; `None` when reading a netlist file.
    pub example: Option<ExampleDesign>,
    /// Fault-list sampling seed.
    pub seed: u64,
    /// Length of the synthetic stimulus, in cycles.
    pub cycles: usize,
    /// Campaign threads (0 = server default; results are thread-invariant).
    pub threads: usize,
    /// Campaign execution engine.
    pub engine: Engine,
    /// Checkpoint spacing of the golden trace under [`Engine::Sparse`].
    pub checkpoint_interval: usize,
    /// Fault-collapsing mode.
    pub collapse: Collapse,
    /// Static pre-pass mode.
    pub prune: Prune,
    /// Stream the job's trace to stdout until it ends.
    pub watch: bool,
}

/// Options of `socfmea status|watch|cancel` — a server plus a job id.
#[derive(Debug)]
pub struct JobRefOptions {
    /// Server address.
    pub addr: String,
    /// The job id (`j-000001`).
    pub job: String,
    /// `watch` only: stream the `/events` progress channel instead of the
    /// normalized result trace.
    pub events: bool,
}

/// Options of `socfmea shutdown`.
#[derive(Debug)]
pub struct ShutdownOptions {
    /// Server address.
    pub addr: String,
}

/// Options of `socfmea zones`.
#[derive(Debug)]
pub struct ZonesOptions {
    /// Path of the Verilog netlist.
    pub input: String,
    /// Zone-extraction configuration (classification prefixes applied).
    pub config: ExtractConfig,
}

/// Report format of `socfmea analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable worksheet.
    Text,
    /// Machine-readable rows.
    Csv,
    /// Safety Requirements Specification draft.
    Srs,
    /// One JSON document (worksheet summary + testability tables).
    Json,
}

/// Options of `socfmea analyze`.
#[derive(Debug)]
pub struct AnalyzeOptions {
    /// Path of the Verilog netlist; `None` when analyzing an example.
    pub input: Option<String>,
    /// A bundled example design; `None` when reading a netlist file.
    pub example: Option<ExampleDesign>,
    /// Zone-extraction configuration.
    pub config: ExtractConfig,
    /// Hardware fault tolerance assumed for the SIL grant.
    pub hft: Hft,
    /// Type-A or type-B subsystem assessment.
    pub subsystem: SubsystemType,
    /// Output format.
    pub format: ReportFormat,
}

/// Options of `socfmea inject`.
#[derive(Debug)]
pub struct InjectOptions {
    /// Path of the Verilog netlist; `None` when injecting into an example.
    pub input: Option<String>,
    /// A bundled example design; `None` when reading a netlist file.
    pub example: Option<ExampleDesign>,
    /// Zone-extraction configuration.
    pub config: ExtractConfig,
    /// Campaign worker threads.
    pub threads: usize,
    /// Fault-list sampling seed.
    pub seed: u64,
    /// Length of the synthetic stimulus, in cycles.
    pub cycles: usize,
    /// Campaign execution engine; every engine yields the bit-identical
    /// result, so this only selects the execution strategy.
    pub engine: Engine,
    /// Checkpoint spacing of the golden trace under [`Engine::Sparse`].
    pub checkpoint_interval: usize,
    /// Fault-collapsing mode: simulate one representative per equivalence
    /// class and expand the rest from the fault dictionary (bit-identical).
    pub collapse: Collapse,
    /// Static pre-pass mode: skip faults proven undetectable and
    /// synthesize their outcomes (bit-identical).
    pub prune: Prune,
    /// Stream a JSONL trace (one record per fault, plus span/phase/end
    /// records) to this path.
    pub trace_out: Option<String>,
    /// Write the metrics-registry snapshot as JSON to this path.
    pub metrics_out: Option<String>,
    /// Show a live progress line on stderr while the campaign runs.
    pub progress: bool,
    /// Suppress the stderr stats and progress reporting.
    pub quiet: bool,
}

/// Options of `socfmea trace summarize` and `socfmea trace flame`.
#[derive(Debug)]
pub struct TraceOptions {
    /// Path of the JSONL trace written by `inject --trace-out` (or a
    /// server `/trace` / `/events` capture).
    pub input: String,
    /// `summarize` only: accept a truncated trace (no `end` record)
    /// instead of exiting non-zero.
    pub allow_partial: bool,
}

/// Options of `socfmea trace diff` — two traces to compare.
#[derive(Debug)]
pub struct TraceDiffOptions {
    /// The baseline trace (`a` column).
    pub a: String,
    /// The comparison trace (`b` column).
    pub b: String,
}

/// One of the example designs bundled with the workspace, lintable without
/// a netlist file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExampleDesign {
    /// The hardened F-MEM memory subsystem (the paper's case study).
    Fmem,
    /// The F-MEM with every hardening mechanism disabled.
    FmemBaseline,
    /// The lockstep dual-core MCU.
    Mcu,
    /// The MCU with a single core (no lockstep comparator).
    McuSingle,
}

impl ExampleDesign {
    fn parse(name: &str) -> Option<ExampleDesign> {
        Some(match name {
            "fmem" => ExampleDesign::Fmem,
            "fmem-baseline" => ExampleDesign::FmemBaseline,
            "mcu" => ExampleDesign::Mcu,
            "mcu-single" => ExampleDesign::McuSingle,
            _ => return None,
        })
    }
}

/// Report format of `socfmea lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintFormat {
    /// Rustc-style findings plus a summary line.
    Text,
    /// One JSON document.
    Json,
}

/// Options of `socfmea lint`.
#[derive(Debug)]
pub struct LintOptions {
    /// Path of the Verilog netlist; `None` when linting an example.
    pub input: Option<String>,
    /// A bundled example design; `None` when linting a netlist file.
    pub example: Option<ExampleDesign>,
    /// Zone-extraction configuration (used for netlist-file inputs; the
    /// examples carry their own classification).
    pub config: ExtractConfig,
    /// Output format.
    pub format: LintFormat,
    /// Promote every warning to an error.
    pub deny_warnings: bool,
    /// Rule codes whose findings are dropped.
    pub allow: Vec<String>,
    /// Rule codes whose findings become errors.
    pub deny: Vec<String>,
    /// Target SIL for the reachability rule (`SL0103`).
    pub target_sil: Option<Sil>,
}

fn parse_class(name: &str) -> Option<ComponentClass> {
    Some(match name {
        "memory" | "ram" => ComponentClass::VariableMemory,
        "rom" | "flash" => ComponentClass::InvariableMemory,
        "cpu" | "processing" => ComponentClass::ProcessingUnit,
        "bus" => ComponentClass::Bus,
        "io" => ComponentClass::InputOutput,
        "clock" => ComponentClass::Clock,
        "power" => ComponentClass::PowerSupply,
        _ => return None,
    })
}

/// The default `--threads` value: host parallelism, capped at 8.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Parses the argument list (program name already stripped).
///
/// # Errors
///
/// Returns a message suitable for stderr when the command line is invalid;
/// callers should follow it with [`USAGE`].
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing command")?.clone();

    // option validity per subcommand
    let is_analyze = command == "analyze";
    let is_inject = command == "inject";
    let is_lint = command == "lint";
    let is_serve = command == "serve";
    let is_submit = command == "submit";
    if !matches!(
        command.as_str(),
        "zones"
            | "analyze"
            | "inject"
            | "lint"
            | "trace"
            | "serve"
            | "submit"
            | "status"
            | "watch"
            | "cancel"
            | "shutdown"
    ) {
        return Err(format!("unknown command `{command}`"));
    }

    // the job-reference client commands take `<job>` plus `--addr` only
    if matches!(command.as_str(), "status" | "watch" | "cancel" | "shutdown") {
        let mut addr = DEFAULT_SERVE_ADDR.to_owned();
        let mut job: Option<String> = None;
        let mut events = false;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--addr" => addr = it.next().ok_or("--addr needs <host:port>")?.clone(),
                "--events" if command == "watch" => events = true,
                other if !other.starts_with('-') && job.is_none() && command != "shutdown" => {
                    job = Some(other.to_owned());
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        if command == "shutdown" {
            return Ok(Command::Shutdown(ShutdownOptions { addr }));
        }
        let job = job.ok_or_else(|| format!("{command} needs a job id"))?;
        let opts = JobRefOptions { addr, job, events };
        return Ok(match command.as_str() {
            "status" => Command::Status(opts),
            "watch" => Command::Watch(opts),
            _ => Command::Cancel(opts),
        });
    }

    // `trace` takes an action word plus one or two paths; only
    // `summarize` accepts a flag (`--allow-partial`)
    if command == "trace" {
        let action = it
            .next()
            .ok_or("trace needs an action (summarize|flame|diff)")?;
        if !matches!(action.as_str(), "summarize" | "flame" | "diff") {
            return Err(format!("unknown trace action `{action}`"));
        }
        let mut paths: Vec<String> = Vec::new();
        let mut allow_partial = false;
        for arg in it {
            match arg.as_str() {
                "--allow-partial" if action == "summarize" => allow_partial = true,
                other if !other.starts_with('-') => paths.push(other.to_owned()),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        let wanted = if action == "diff" { 2 } else { 1 };
        if paths.len() > wanted {
            return Err(format!("unknown option `{}`", paths[wanted]));
        }
        if action == "diff" {
            let mut paths = paths.into_iter();
            let (a, b) = (paths.next(), paths.next());
            let (Some(a), Some(b)) = (a, b) else {
                return Err("trace diff needs two trace files".into());
            };
            return Ok(Command::TraceDiff(TraceDiffOptions { a, b }));
        }
        let Some(input) = paths.into_iter().next() else {
            return Err(format!("trace {action} needs a trace file"));
        };
        let opts = TraceOptions {
            input,
            allow_partial,
        };
        return Ok(match action.as_str() {
            "summarize" => Command::TraceSummarize(opts),
            _ => Command::TraceFlame(opts),
        });
    }

    // analyze's, inject's, lint's and submit's netlist paths are optional
    // (an --example may stand in), so they are collected as positionals
    // inside the option loop instead of up front; serve takes no input
    let takes_example = is_analyze || is_inject || is_lint || is_submit;
    let mut input = String::new();
    if !takes_example && !is_serve {
        input = it.next().ok_or("missing input file")?.clone();
    }
    let mut config = ExtractConfig::default();
    let mut hft = Hft(0);
    let mut subsystem = SubsystemType::B;
    let mut format = ReportFormat::Text;
    let mut threads: Option<usize> = None;
    let mut seed = 0x5eed;
    let mut cycles = 48usize;
    let mut engine = Engine::Auto;
    let mut checkpoint_interval = 16usize;
    let mut collapse = Collapse::Off;
    let mut prune = Prune::Off;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut progress = false;
    let mut quiet = false;
    let mut positional: Option<String> = None;
    let mut example: Option<ExampleDesign> = None;
    let mut lint_format = LintFormat::Text;
    let mut deny_warnings = false;
    let mut allow: Vec<String> = Vec::new();
    let mut deny: Vec<String> = Vec::new();
    let mut target_sil: Option<Sil> = None;
    let mut addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut tenant = "default".to_owned();
    let mut workers = 2usize;
    let mut queue = 64usize;
    let mut cache_mb = 256usize;
    let mut telemetry = true;
    let mut watch = false;

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--class" => {
                let spec = it.next().ok_or("--class needs <prefix>=<class>")?;
                let (prefix, class) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --class spec `{spec}`"))?;
                let class = parse_class(class).ok_or_else(|| format!("unknown class `{class}`"))?;
                config = config.classify(prefix, class);
            }
            "--hft" if is_analyze => {
                let n = it.next().ok_or("--hft needs a number")?;
                hft = Hft(n.parse().map_err(|_| format!("bad HFT `{n}`"))?);
            }
            "--type-a" if is_analyze => subsystem = SubsystemType::A,
            "--format" if is_analyze => {
                let f = it.next().ok_or("--format needs a value")?;
                format = match f.as_str() {
                    "text" => ReportFormat::Text,
                    "csv" => ReportFormat::Csv,
                    "srs" => ReportFormat::Srs,
                    "json" => ReportFormat::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--threads" if is_inject || is_submit => {
                let n = it.next().ok_or("--threads needs a number")?;
                threads = Some(n.parse().map_err(|_| format!("bad thread count `{n}`"))?);
            }
            "--seed" if is_inject || is_submit => {
                let s = it.next().ok_or("--seed needs a number")?;
                seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--cycles" if is_inject || is_submit => {
                let n = it.next().ok_or("--cycles needs a number")?;
                cycles = n.parse().map_err(|_| format!("bad cycle count `{n}`"))?;
                if cycles == 0 {
                    return Err("--cycles must be at least 1".into());
                }
            }
            "--engine" if is_inject || is_submit => {
                let e = it.next().ok_or("--engine needs a value")?;
                engine = match e.as_str() {
                    "auto" => Engine::Auto,
                    "lockstep" => Engine::Lockstep,
                    "sparse" => Engine::Sparse,
                    "ppsfp" => Engine::Ppsfp,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            // deprecated alias, kept so existing scripts continue to work
            "--accel" if is_inject => engine = Engine::Sparse,
            "--collapse" if is_inject || is_submit => collapse = Collapse::Dictionary,
            "--prune" if is_inject || is_submit => prune = Prune::Static,
            "--checkpoint-interval" if is_inject || is_submit => {
                let n = it.next().ok_or("--checkpoint-interval needs a number")?;
                checkpoint_interval = n
                    .parse()
                    .map_err(|_| format!("bad checkpoint interval `{n}`"))?;
                if checkpoint_interval == 0 {
                    return Err("--checkpoint-interval must be at least 1".into());
                }
            }
            "--trace-out" if is_inject => {
                let p = it.next().ok_or("--trace-out needs a file path")?;
                trace_out = Some(p.clone());
            }
            "--metrics-out" if is_inject => {
                let p = it.next().ok_or("--metrics-out needs a file path")?;
                metrics_out = Some(p.clone());
            }
            "--progress" if is_inject => progress = true,
            "--quiet" if is_inject => quiet = true,
            "--addr" if is_serve || is_submit => {
                addr = it.next().ok_or("--addr needs <host:port>")?.clone();
            }
            "--tenant" if is_submit => {
                tenant = it.next().ok_or("--tenant needs a name")?.clone();
            }
            "--watch" if is_submit => watch = true,
            "--workers" if is_serve => {
                let n = it.next().ok_or("--workers needs a number")?;
                workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue" if is_serve => {
                let n = it.next().ok_or("--queue needs a number")?;
                queue = n.parse().map_err(|_| format!("bad queue depth `{n}`"))?;
                if queue == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--cache-mb" if is_serve => {
                let n = it.next().ok_or("--cache-mb needs a number")?;
                cache_mb = n.parse().map_err(|_| format!("bad cache budget `{n}`"))?;
            }
            "--no-telemetry" if is_serve => telemetry = false,
            "--example" if takes_example => {
                let e = it.next().ok_or("--example needs a design name")?;
                example = Some(
                    ExampleDesign::parse(e)
                        .ok_or_else(|| format!("unknown example design `{e}`"))?,
                );
            }
            "--format" if is_lint => {
                let f = it.next().ok_or("--format needs a value")?;
                lint_format = match f.as_str() {
                    "text" => LintFormat::Text,
                    "json" => LintFormat::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--deny" if is_lint => {
                let v = it.next().ok_or("--deny needs `warnings` or a rule code")?;
                if v == "warnings" {
                    deny_warnings = true;
                } else {
                    check_rule_code(v)?;
                    deny.push(v.clone());
                }
            }
            "--allow" if is_lint => {
                let v = it.next().ok_or("--allow needs a rule code")?;
                check_rule_code(v)?;
                allow.push(v.clone());
            }
            "--target-sil" if is_lint => {
                let n = it.next().ok_or("--target-sil needs a level (1-4)")?;
                let level: u8 = n.parse().map_err(|_| format!("bad SIL level `{n}`"))?;
                target_sil =
                    Some(Sil::from_level(level).ok_or_else(|| format!("bad SIL level `{n}`"))?);
            }
            other if takes_example && !other.starts_with('-') && positional.is_none() => {
                positional = Some(other.to_owned());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    Ok(match command.as_str() {
        "zones" => Command::Zones(ZonesOptions { input, config }),
        "analyze" => {
            if positional.is_some() == example.is_some() {
                return Err("analyze needs exactly one of <netlist.v> or --example".into());
            }
            Command::Analyze(AnalyzeOptions {
                input: positional,
                example,
                config,
                hft,
                subsystem,
                format,
            })
        }
        "inject" => {
            if positional.is_some() == example.is_some() {
                return Err("inject needs exactly one of <netlist.v> or --example".into());
            }
            Command::Inject(InjectOptions {
                input: positional,
                example,
                config,
                threads: threads.unwrap_or_else(default_threads),
                seed,
                cycles,
                engine,
                checkpoint_interval,
                collapse,
                prune,
                trace_out,
                metrics_out,
                progress,
                quiet,
            })
        }
        "serve" => Command::Serve(ServeOptions {
            addr,
            workers,
            queue,
            cache_mb,
            telemetry,
        }),
        "submit" => {
            if positional.is_some() == example.is_some() {
                return Err("submit needs exactly one of <netlist.v> or --example".into());
            }
            Command::Submit(SubmitOptions {
                addr,
                tenant,
                input: positional,
                example,
                seed,
                cycles,
                threads: threads.unwrap_or(0),
                engine,
                checkpoint_interval,
                collapse,
                prune,
                watch,
            })
        }
        "lint" => {
            if positional.is_some() == example.is_some() {
                return Err("lint needs exactly one of <netlist.v> or --example".into());
            }
            Command::Lint(LintOptions {
                input: positional,
                example,
                config,
                format: lint_format,
                deny_warnings,
                allow,
                deny,
                target_sil,
            })
        }
        _ => unreachable!("validated above"),
    })
}

fn check_rule_code(code: &str) -> Result<(), String> {
    if socfmea_lint::is_known_code(code) {
        Ok(())
    } else {
        Err(format!("unknown rule code `{code}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn zones_parses_with_classification() {
        let cmd = parse(&argv(&["zones", "d.v", "--class", "mem=memory"])).unwrap();
        let Command::Zones(o) = cmd else {
            panic!("zones expected")
        };
        assert_eq!(o.input, "d.v");
    }

    #[test]
    fn analyze_parses_all_options() {
        let cmd = parse(&argv(&[
            "analyze", "d.v", "--hft", "1", "--type-a", "--format", "csv",
        ]))
        .unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("analyze expected")
        };
        assert_eq!(o.input.as_deref(), Some("d.v"));
        assert!(o.example.is_none());
        assert_eq!(o.hft, Hft(1));
        assert_eq!(o.subsystem, SubsystemType::A);
        assert_eq!(o.format, ReportFormat::Csv);
    }

    #[test]
    fn analyze_takes_an_example_and_a_json_format() {
        let cmd = parse(&argv(&["analyze", "--example", "mcu", "--format", "json"])).unwrap();
        let Command::Analyze(o) = cmd else {
            panic!("analyze expected")
        };
        assert!(o.input.is_none());
        assert_eq!(o.example, Some(ExampleDesign::Mcu));
        assert_eq!(o.format, ReportFormat::Json);
        // exactly one of <netlist.v> / --example
        assert!(parse(&argv(&["analyze"]))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse(&argv(&["analyze", "d.v", "--example", "mcu"]))
            .unwrap_err()
            .contains("exactly one"));
    }

    #[test]
    fn inject_parses_prune() {
        let cmd = parse(&argv(&["inject", "d.v", "--prune", "--collapse"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.prune, Prune::Static);
        assert_eq!(
            o.collapse,
            Collapse::Dictionary,
            "prune composes with collapse"
        );
        // default is off, and the flag is inject-only
        let Command::Inject(o) = parse(&argv(&["inject", "d.v"])).unwrap() else {
            panic!("inject expected")
        };
        assert_eq!(o.prune, Prune::Off);
        assert!(parse(&argv(&["analyze", "d.v", "--prune"])).is_err());
        assert!(parse(&argv(&["lint", "d.v", "--prune"])).is_err());
    }

    #[test]
    fn inject_parses_threads_seed_cycles() {
        let cmd = parse(&argv(&[
            "inject",
            "d.v",
            "--threads",
            "4",
            "--seed",
            "7",
            "--cycles",
            "16",
        ]))
        .unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.threads, 4);
        assert_eq!(o.seed, 7);
        assert_eq!(o.cycles, 16);
    }

    #[test]
    fn inject_defaults_are_sensible() {
        let cmd = parse(&argv(&["inject", "d.v"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.input.as_deref(), Some("d.v"));
        assert!(o.example.is_none());
        assert!(o.threads >= 1);
        assert_eq!(o.seed, 0x5eed);
        assert_eq!(o.cycles, 48);
        assert_eq!(o.engine, Engine::Auto);
        assert_eq!(o.checkpoint_interval, 16);
        assert_eq!(o.collapse, Collapse::Off);
        assert!(o.trace_out.is_none());
        assert!(o.metrics_out.is_none());
        assert!(!o.progress);
        assert!(!o.quiet);
    }

    #[test]
    fn inject_parses_observability_flags() {
        let cmd = parse(&argv(&[
            "inject",
            "d.v",
            "--trace-out",
            "t.jsonl",
            "--metrics-out",
            "m.json",
            "--progress",
            "--quiet",
        ]))
        .unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert!(o.progress);
        assert!(o.quiet);
        // observability flags are inject-only
        assert!(parse(&argv(&["analyze", "d.v", "--trace-out", "t.jsonl"])).is_err());
        assert!(parse(&argv(&["lint", "d.v", "--progress"])).is_err());
        assert!(parse(&argv(&["zones", "d.v", "--quiet"])).is_err());
        // missing values are named
        assert!(parse(&argv(&["inject", "d.v", "--trace-out"]))
            .unwrap_err()
            .contains("--trace-out"));
    }

    #[test]
    fn inject_takes_a_netlist_or_an_example_but_not_both() {
        let cmd = parse(&argv(&["inject", "--example", "fmem"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert!(o.input.is_none());
        assert_eq!(o.example, Some(ExampleDesign::Fmem));
        assert!(parse(&argv(&["inject"]))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse(&argv(&["inject", "d.v", "--example", "mcu"]))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse(&argv(&["inject", "--example", "dsp"]))
            .unwrap_err()
            .contains("unknown example"));
    }

    #[test]
    fn trace_summarize_parses_one_path() {
        let cmd = parse(&argv(&["trace", "summarize", "run.jsonl"])).unwrap();
        let Command::TraceSummarize(o) = cmd else {
            panic!("trace summarize expected")
        };
        assert_eq!(o.input, "run.jsonl");
        assert!(!o.allow_partial);
        assert!(parse(&argv(&["trace"]))
            .unwrap_err()
            .contains("needs an action"));
        assert!(parse(&argv(&["trace", "replay", "run.jsonl"]))
            .unwrap_err()
            .contains("unknown trace action"));
        assert!(parse(&argv(&["trace", "summarize"]))
            .unwrap_err()
            .contains("needs a trace file"));
        assert!(parse(&argv(&["trace", "summarize", "a.jsonl", "b.jsonl"])).is_err());
    }

    #[test]
    fn trace_summarize_takes_allow_partial() {
        let cmd = parse(&argv(&[
            "trace",
            "summarize",
            "--allow-partial",
            "run.jsonl",
        ]))
        .unwrap();
        let Command::TraceSummarize(o) = cmd else {
            panic!("trace summarize expected")
        };
        assert_eq!(o.input, "run.jsonl");
        assert!(o.allow_partial);
        // flag order does not matter
        let Command::TraceSummarize(o) = parse(&argv(&[
            "trace",
            "summarize",
            "run.jsonl",
            "--allow-partial",
        ]))
        .unwrap() else {
            panic!("trace summarize expected")
        };
        assert!(o.allow_partial);
        // summarize-only: flame and diff reject it
        assert!(parse(&argv(&["trace", "flame", "run.jsonl", "--allow-partial"])).is_err());
        assert!(parse(&argv(&[
            "trace",
            "diff",
            "a.jsonl",
            "b.jsonl",
            "--allow-partial"
        ]))
        .is_err());
    }

    #[test]
    fn trace_flame_parses_one_path() {
        let cmd = parse(&argv(&["trace", "flame", "run.jsonl"])).unwrap();
        let Command::TraceFlame(o) = cmd else {
            panic!("trace flame expected")
        };
        assert_eq!(o.input, "run.jsonl");
        assert!(parse(&argv(&["trace", "flame"]))
            .unwrap_err()
            .contains("needs a trace file"));
        assert!(parse(&argv(&["trace", "flame", "a.jsonl", "b.jsonl"])).is_err());
    }

    #[test]
    fn trace_diff_parses_two_paths() {
        let cmd = parse(&argv(&["trace", "diff", "a.jsonl", "b.jsonl"])).unwrap();
        let Command::TraceDiff(o) = cmd else {
            panic!("trace diff expected")
        };
        assert_eq!(o.a, "a.jsonl");
        assert_eq!(o.b, "b.jsonl");
        assert!(parse(&argv(&["trace", "diff", "a.jsonl"]))
            .unwrap_err()
            .contains("needs two trace files"));
        assert!(parse(&argv(&["trace", "diff", "a.jsonl", "b.jsonl", "c.jsonl"])).is_err());
    }

    #[test]
    fn inject_parses_engine_options() {
        for (name, engine) in [
            ("auto", Engine::Auto),
            ("lockstep", Engine::Lockstep),
            ("sparse", Engine::Sparse),
            ("ppsfp", Engine::Ppsfp),
        ] {
            let cmd = parse(&argv(&["inject", "d.v", "--engine", name])).unwrap();
            let Command::Inject(o) = cmd else {
                panic!("inject expected")
            };
            assert_eq!(o.engine, engine, "--engine {name}");
        }
        let cmd = parse(&argv(&[
            "inject",
            "d.v",
            "--engine",
            "sparse",
            "--checkpoint-interval",
            "8",
        ]))
        .unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.engine, Engine::Sparse);
        assert_eq!(o.checkpoint_interval, 8);
        // unknown engines, degenerate and foreign uses are rejected
        assert!(parse(&argv(&["inject", "d.v", "--engine", "warp"]))
            .unwrap_err()
            .contains("unknown engine"));
        assert!(
            parse(&argv(&["inject", "d.v", "--checkpoint-interval", "0"]))
                .unwrap_err()
                .contains("at least 1")
        );
        assert!(parse(&argv(&["analyze", "d.v", "--engine", "sparse"])).is_err());
        assert!(parse(&argv(&["lint", "d.v", "--checkpoint-interval", "4"])).is_err());
    }

    #[test]
    fn inject_accel_is_a_deprecated_alias_for_engine_sparse() {
        let cmd = parse(&argv(&["inject", "d.v", "--accel"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.engine, Engine::Sparse);
        assert!(parse(&argv(&["analyze", "d.v", "--accel"])).is_err());
    }

    #[test]
    fn inject_parses_collapse() {
        let cmd = parse(&argv(&["inject", "d.v", "--collapse", "--engine", "ppsfp"])).unwrap();
        let Command::Inject(o) = cmd else {
            panic!("inject expected")
        };
        assert_eq!(o.collapse, Collapse::Dictionary);
        assert_eq!(o.engine, Engine::Ppsfp, "collapse composes with any engine");
        // --collapse is an inject-only option
        assert!(parse(&argv(&["analyze", "d.v", "--collapse"])).is_err());
        assert!(parse(&argv(&["zones", "d.v", "--collapse"])).is_err());
    }

    #[test]
    fn subcommand_scoping_rejects_foreign_options() {
        // analyze-only options are rejected under zones/inject and vice versa
        assert!(parse(&argv(&["zones", "d.v", "--hft", "1"])).is_err());
        assert!(parse(&argv(&["inject", "d.v", "--format", "csv"])).is_err());
        assert!(parse(&argv(&["analyze", "d.v", "--threads", "4"])).is_err());
    }

    #[test]
    fn lint_parses_example_and_policy() {
        let cmd = parse(&argv(&[
            "lint",
            "--example",
            "mcu",
            "--format",
            "json",
            "--deny",
            "warnings",
            "--deny",
            "SL0004",
            "--allow",
            "SL0002",
            "--target-sil",
            "3",
        ]))
        .unwrap();
        let Command::Lint(o) = cmd else {
            panic!("lint expected")
        };
        assert_eq!(o.example, Some(ExampleDesign::Mcu));
        assert!(o.input.is_none());
        assert_eq!(o.format, LintFormat::Json);
        assert!(o.deny_warnings);
        assert_eq!(o.deny, vec!["SL0004".to_owned()]);
        assert_eq!(o.allow, vec!["SL0002".to_owned()]);
        assert_eq!(o.target_sil, Some(Sil::from_level(3).unwrap()));
    }

    #[test]
    fn lint_accepts_a_netlist_path_positionally() {
        let cmd = parse(&argv(&["lint", "d.v", "--class", "mem=memory"])).unwrap();
        let Command::Lint(o) = cmd else {
            panic!("lint expected")
        };
        assert_eq!(o.input.as_deref(), Some("d.v"));
        assert!(o.example.is_none());
        assert_eq!(o.format, LintFormat::Text);
        assert!(!o.deny_warnings);
    }

    #[test]
    fn lint_rejects_bad_combinations() {
        // neither input nor example
        assert!(parse(&argv(&["lint"])).unwrap_err().contains("exactly one"));
        // both input and example
        assert!(parse(&argv(&["lint", "d.v", "--example", "mcu"]))
            .unwrap_err()
            .contains("exactly one"));
        // unknown example, rule code, format, SIL level
        assert!(parse(&argv(&["lint", "--example", "dsp"]))
            .unwrap_err()
            .contains("unknown example"));
        assert!(parse(&argv(&["lint", "d.v", "--deny", "SL9999"]))
            .unwrap_err()
            .contains("unknown rule code"));
        assert!(parse(&argv(&["lint", "d.v", "--allow", "warnings"]))
            .unwrap_err()
            .contains("unknown rule code"));
        assert!(parse(&argv(&["lint", "d.v", "--format", "xml"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(parse(&argv(&["lint", "d.v", "--target-sil", "9"]))
            .unwrap_err()
            .contains("bad SIL level"));
        // lint options are scoped to lint
        assert!(parse(&argv(&["analyze", "d.v", "--example", "mcu"])).is_err());
        assert!(parse(&argv(&["zones", "d.v", "--deny", "warnings"])).is_err());
    }

    #[test]
    fn serve_parses_defaults_and_overrides() {
        let Command::Serve(o) = parse(&argv(&["serve"])).unwrap() else {
            panic!("serve expected")
        };
        assert_eq!(o.addr, DEFAULT_SERVE_ADDR);
        assert_eq!(o.workers, 2);
        assert_eq!(o.queue, 64);
        assert_eq!(o.cache_mb, 256);
        assert!(o.telemetry, "telemetry defaults on");
        let Command::Serve(o) = parse(&argv(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "4",
            "--queue",
            "8",
            "--cache-mb",
            "64",
        ]))
        .unwrap() else {
            panic!("serve expected")
        };
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.workers, 4);
        assert_eq!(o.queue, 8);
        assert_eq!(o.cache_mb, 64);
        let Command::Serve(o) = parse(&argv(&["serve", "--no-telemetry"])).unwrap() else {
            panic!("serve expected")
        };
        assert!(!o.telemetry);
        assert!(parse(&argv(&["inject", "d.v", "--no-telemetry"])).is_err());
        // degenerate values and foreign options are rejected
        assert!(parse(&argv(&["serve", "--workers", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv(&["serve", "--queue", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv(&["serve", "--threads", "4"])).is_err());
        assert!(parse(&argv(&["inject", "d.v", "--workers", "4"])).is_err());
    }

    #[test]
    fn submit_mirrors_the_inject_spec_flags() {
        let Command::Submit(o) = parse(&argv(&[
            "submit",
            "--example",
            "fmem",
            "--tenant",
            "certlab",
            "--seed",
            "7",
            "--cycles",
            "16",
            "--engine",
            "sparse",
            "--checkpoint-interval",
            "8",
            "--collapse",
            "--prune",
            "--watch",
        ]))
        .unwrap() else {
            panic!("submit expected")
        };
        assert_eq!(o.addr, DEFAULT_SERVE_ADDR);
        assert_eq!(o.tenant, "certlab");
        assert_eq!(o.example, Some(ExampleDesign::Fmem));
        assert!(o.input.is_none());
        assert_eq!(o.seed, 7);
        assert_eq!(o.cycles, 16);
        assert_eq!(o.engine, Engine::Sparse);
        assert_eq!(o.checkpoint_interval, 8);
        assert_eq!(o.collapse, Collapse::Dictionary);
        assert_eq!(o.prune, Prune::Static);
        assert!(o.watch);
    }

    #[test]
    fn submit_defaults_defer_threads_to_the_server() {
        let Command::Submit(o) = parse(&argv(&["submit", "d.v"])).unwrap() else {
            panic!("submit expected")
        };
        assert_eq!(o.input.as_deref(), Some("d.v"));
        assert_eq!(o.threads, 0, "0 = server default");
        assert_eq!(o.tenant, "default");
        assert_eq!(o.seed, 0x5eed);
        assert_eq!(o.cycles, 48);
        assert_eq!(o.engine, Engine::Auto);
        assert!(!o.watch);
        let Command::Submit(o) = parse(&argv(&["submit", "d.v", "--threads", "3"])).unwrap() else {
            panic!("submit expected")
        };
        assert_eq!(o.threads, 3);
        // exactly one of <netlist.v> / --example, like inject
        assert!(parse(&argv(&["submit"]))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse(&argv(&["submit", "d.v", "--example", "mcu"]))
            .unwrap_err()
            .contains("exactly one"));
        // inject-only observability flags stay inject-only
        assert!(parse(&argv(&["submit", "d.v", "--trace-out", "t.jsonl"])).is_err());
        assert!(parse(&argv(&["submit", "d.v", "--progress"])).is_err());
        assert!(parse(&argv(&["submit", "d.v", "--accel"])).is_err());
    }

    #[test]
    fn job_reference_commands_take_a_job_and_an_addr() {
        for (name, want_status, want_watch) in [
            ("status", true, false),
            ("watch", false, true),
            ("cancel", false, false),
        ] {
            let cmd = parse(&argv(&[name, "j-000001", "--addr", "10.0.0.1:7171"])).unwrap();
            let o = match cmd {
                Command::Status(o) if want_status => o,
                Command::Watch(o) if want_watch => o,
                Command::Cancel(o) if !want_status && !want_watch => o,
                other => panic!("unexpected parse of {name}: {other:?}"),
            };
            assert_eq!(o.job, "j-000001");
            assert_eq!(o.addr, "10.0.0.1:7171");
            assert!(!o.events);
            assert!(parse(&argv(&[name]))
                .unwrap_err()
                .contains("needs a job id"));
            assert!(parse(&argv(&[name, "j-1", "j-2"])).is_err());
        }
    }

    #[test]
    fn watch_takes_an_events_flag() {
        let Command::Watch(o) = parse(&argv(&["watch", "j-000001", "--events"])).unwrap() else {
            panic!("watch expected")
        };
        assert!(o.events);
        assert_eq!(o.job, "j-000001");
        // --events is watch-only
        assert!(parse(&argv(&["status", "j-000001", "--events"])).is_err());
        assert!(parse(&argv(&["cancel", "j-000001", "--events"])).is_err());
    }

    #[test]
    fn shutdown_takes_only_an_addr() {
        let Command::Shutdown(o) = parse(&argv(&["shutdown"])).unwrap() else {
            panic!("shutdown expected")
        };
        assert_eq!(o.addr, DEFAULT_SERVE_ADDR);
        let Command::Shutdown(o) = parse(&argv(&["shutdown", "--addr", "127.0.0.1:7272"])).unwrap()
        else {
            panic!("shutdown expected")
        };
        assert_eq!(o.addr, "127.0.0.1:7272");
        assert!(parse(&argv(&["shutdown", "j-000001"])).is_err());
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(parse(&[]).unwrap_err().contains("missing command"));
        assert!(parse(&argv(&["zones"]))
            .unwrap_err()
            .contains("missing input"));
        assert!(parse(&argv(&["frobnicate", "x.v"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv(&["analyze", "d.v", "--format", "pdf"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(parse(&argv(&["inject", "d.v", "--cycles", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&argv(&["zones", "d.v", "--class", "broken"]))
            .unwrap_err()
            .contains("bad --class"));
    }
}
