//! `socfmea` — command-line front end of the SoC-level FMEA flow.
//!
//! ```text
//! socfmea zones   <netlist.v> [options]   list the extracted sensible zones
//! socfmea analyze [<netlist.v>] [options] run the FMEA and print the report
//!                                         with per-zone testability tables
//! socfmea inject  [<netlist.v>] [options] run a fault-injection campaign
//! socfmea lint    [<netlist.v>] [options] run the structural safety lints
//! socfmea trace summarize <trace.jsonl>   re-aggregate a campaign trace
//!                                         (non-zero on truncation unless
//!                                         --allow-partial)
//! socfmea trace flame <trace.jsonl>       span self-times as folded stacks
//! socfmea trace diff <a.jsonl> <b.jsonl>  compare two traces' self-times
//! socfmea serve   [options]               run the multi-tenant campaign server
//!                                         (--no-telemetry drops per-job
//!                                         spans/progress/labeled metrics)
//! socfmea submit  [<netlist.v>] [options] submit a campaign to a server
//! socfmea status  <job> [--addr]          query a submitted job
//! socfmea watch   <job> [--addr]          stream a job's live JSONL trace
//!                                         (--events: the progress channel)
//! socfmea cancel  <job> [--addr]          cancel a queued or running job
//! socfmea shutdown [--addr]               drain and stop a campaign server
//!
//! common options:
//!   --class <prefix>=<class>   classify zones under a block-path prefix
//!                              (memory|rom|cpu|bus|io|clock|power)
//! analyze options:
//!   --hft <n>                  hardware fault tolerance for the SIL grant
//!   --type-a                   assess as a type-A subsystem (default: B)
//!   --format text|csv|srs|json report format (default: text)
//!   --example <design>         analyze a bundled design
//! inject options:
//!   --threads <n>              campaign worker threads
//!   --seed <s>                 fault-list sampling seed
//!   --cycles <n>               synthetic workload length in cycles
//!   --engine <e>               campaign engine (auto|lockstep|sparse|ppsfp)
//!   --accel                    deprecated alias for --engine sparse
//!   --checkpoint-interval <n>  golden-trace checkpoint spacing (sparse)
//!   --collapse                 simulate one representative per equivalence
//!                              class, back-annotate the rest
//!   --prune                    skip statically proven-undetectable faults,
//!                              synthesize their outcomes (bit-identical)
//!   --example <design>         inject into a bundled design
//!   --trace-out <f.jsonl>      stream one JSONL record per fault
//!   --metrics-out <f.json>     write the metrics-registry snapshot
//!   --progress                 live progress line on stderr
//!   --quiet                    suppress the stderr stats/progress lines
//! lint options:
//!   --example <design>         lint a bundled design (fmem|fmem-baseline|
//!                              mcu|mcu-single) instead of a netlist file
//!   --format text|json         report format
//!   --deny warnings|<SLxxxx>   promote findings to errors
//!   --allow <SLxxxx>           drop a rule's findings
//!   --target-sil <n>           check SIL reachability (SL0103)
//! ```
//!
//! Argument parsing lives in [`soc_fmea::cli`]; this binary is the
//! dispatcher. The input is the structural Verilog subset documented in
//! [`soc_fmea::netlist::verilog`]; zones get default worksheet assumptions
//! (no diagnostic claims — add those programmatically for real
//! assessments), so `analyze` prints the *uncovered* FMEA a safety
//! analysis starts from, while `inject` measures DC/SFF directly by
//! golden-vs-faulty co-simulation under a seeded random workload.

use soc_fmea::accel::Topology;
use soc_fmea::cli::{
    self, AnalyzeOptions, Command, ExampleDesign, InjectOptions, JobRefOptions, LintFormat,
    LintOptions, ReportFormat, ServeOptions, ShutdownOptions, SubmitOptions, TraceDiffOptions,
    TraceOptions, ZonesOptions,
};
use soc_fmea::faultsim::{
    analyze, generate_fault_list, Campaign, EnvironmentBuilder, FaultListConfig, OperationalProfile,
};
use soc_fmea::fmea::{
    extract_zones, predict_all_effects, report, ExtractConfig, Worksheet, ZoneGraph,
};
use soc_fmea::lint::{LintConfig, LintRunner};
use soc_fmea::netlist::{parse_verilog, Netlist};
use soc_fmea::obs::{
    json, Observer, Profile, ProgressReporter, StderrRender, TraceSink, TraceSummary,
};
use soc_fmea::serve::{Client, DesignRef, JobSpec, Server, ServerConfig};
use soc_fmea::static_analysis::TestabilityAnalysis;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("{}", cli::USAGE);
    ExitCode::from(2)
}

fn load_netlist(input: &str) -> Result<Netlist, ExitCode> {
    let source = std::fs::read_to_string(input).map_err(|e| {
        eprintln!("socfmea: cannot read `{input}`: {e}");
        ExitCode::FAILURE
    })?;
    parse_verilog(&source).map_err(|e| {
        eprintln!("socfmea: {input}: {e}");
        ExitCode::FAILURE
    })
}

fn run_zones(opts: &ZonesOptions) -> Result<(), ExitCode> {
    let netlist = load_netlist(&opts.input)?;
    let zones = extract_zones(&netlist, &opts.config);
    println!(
        "{}: {} gates, {} flip-flops -> {} sensible zones",
        netlist.name(),
        netlist.gate_count(),
        netlist.dff_count(),
        zones.len()
    );
    for z in zones.zones() {
        println!("  {z}");
    }
    let (unassigned, local, wide) = zones.membership().census();
    println!("cone membership: {local} local, {wide} wide, {unassigned} un-zoned gates");
    Ok(())
}

fn run_analyze(opts: &AnalyzeOptions) -> Result<(), ExitCode> {
    let (netlist, config) = match opts.example {
        Some(example) => example_netlist(example)?,
        None => {
            let input = opts.input.as_deref().expect("validated by the parser");
            (load_netlist(input)?, opts.config.clone())
        }
    };
    let zones = extract_zones(&netlist, &config);
    // The bundled examples carry their own diagnostic claims; a netlist
    // file starts from the uncovered worksheet.
    let mut ws = match opts.example {
        Some(ExampleDesign::Fmem) => soc_fmea::memsys::fmea::build_worksheet(
            &zones,
            &soc_fmea::memsys::MemSysConfig::hardened(),
        ),
        Some(ExampleDesign::FmemBaseline) => soc_fmea::memsys::fmea::build_worksheet(
            &zones,
            &soc_fmea::memsys::MemSysConfig::baseline(),
        ),
        Some(ExampleDesign::Mcu) => soc_fmea::mcu::fmea::build_worksheet(
            &zones,
            &soc_fmea::mcu::McuConfig::lockstep(soc_fmea::mcu::programs::checksum_loop()),
        ),
        Some(ExampleDesign::McuSingle) => soc_fmea::mcu::fmea::build_worksheet(
            &zones,
            &soc_fmea::mcu::McuConfig::single(soc_fmea::mcu::programs::checksum_loop()),
        ),
        None => Worksheet::new(&zones),
    };
    ws.set_hft(opts.hft);
    ws.set_subsystem(opts.subsystem);
    let result = ws.compute();
    let statics = Topology::build(&netlist)
        .ok()
        .map(|topo| TestabilityAnalysis::analyze(&netlist, &topo, netlist.outputs()));
    match opts.format {
        ReportFormat::Csv => print!("{}", report::render_csv(&result, &zones)),
        ReportFormat::Srs => {
            let graph = ZoneGraph::build(&netlist, &zones);
            let effects = predict_all_effects(&graph);
            print!(
                "{}",
                report::render_srs(netlist.name(), &result, &zones, &effects)
            );
        }
        ReportFormat::Text => {
            print!("{}", report::render_text(&result, &zones));
            if let Some(statics) = &statics {
                print!("{}", render_testability_text(&netlist, &zones, statics));
            }
        }
        ReportFormat::Json => match &statics {
            Some(statics) => println!(
                "{}",
                render_analyze_json(&netlist, &zones, &result, statics)
            ),
            None => {
                eprintln!("socfmea: design is not levelizable; no static analysis possible");
                return Err(ExitCode::FAILURE);
            }
        },
    }
    Ok(())
}

/// Per-zone static testability gathered for one zone of the report: anchor
/// sites split into proven-constant, structurally unobservable and live,
/// plus the SCOAP observability / sequential-depth extremes of the live
/// sites.
struct ZoneTestability {
    sites: usize,
    constant: usize,
    unobservable: usize,
    co_max: Option<u32>,
    seq_max: Option<u32>,
}

impl ZoneTestability {
    fn gather(
        zone: &soc_fmea::fmea::SensibleZone,
        statics: &TestabilityAnalysis,
    ) -> ZoneTestability {
        let mut t = ZoneTestability {
            sites: zone.anchors.len(),
            constant: 0,
            unobservable: 0,
            co_max: None,
            seq_max: None,
        };
        for &a in &zone.anchors {
            if statics.constant(a).is_some() {
                t.constant += 1;
            } else if !statics.observable(a) {
                t.unobservable += 1;
            } else {
                let co = statics.co(a);
                if co != soc_fmea::static_analysis::UNREACHABLE {
                    t.co_max = Some(t.co_max.unwrap_or(0).max(co));
                }
                let seq = statics.seq_depth(a);
                if seq != soc_fmea::static_analysis::UNREACHABLE {
                    t.seq_max = Some(t.seq_max.unwrap_or(0).max(seq));
                }
            }
        }
        t
    }

    fn live(&self) -> usize {
        self.sites - self.constant - self.unobservable
    }
}

/// The `analyze` text-format appendix: one static-testability row per zone.
fn render_testability_text(
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    statics: &TestabilityAnalysis,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\nstatic testability ({} monitored outputs)",
        netlist.outputs().len()
    );
    let _ = writeln!(
        s,
        "{:<30} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8}",
        "zone", "sites", "const", "unobs", "live", "co max", "seq max"
    );
    let (mut dead, mut total) = (0usize, 0usize);
    let opt = |v: Option<u32>| v.map_or("-".to_owned(), |x| x.to_string());
    for z in zones.zones() {
        let t = ZoneTestability::gather(z, statics);
        dead += t.constant + t.unobservable;
        total += t.sites;
        let _ = writeln!(
            s,
            "{:<30} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8}",
            z.name,
            t.sites,
            t.constant,
            t.unobservable,
            t.live(),
            opt(t.co_max),
            opt(t.seq_max)
        );
    }
    if total > 0 {
        let _ = writeln!(
            s,
            "statically dead fault sites: {dead}/{total} ({:.1}%)",
            100.0 * dead as f64 / total as f64
        );
    }
    s
}

/// The `analyze --format json` document: worksheet summary plus the same
/// per-zone testability table the text format appends. Hand-rolled JSON in
/// the style of the lint report (no serialization dependency).
fn render_analyze_json(
    netlist: &Netlist,
    zones: &soc_fmea::fmea::ZoneSet,
    result: &soc_fmea::fmea::worksheet::FmeaResult,
    statics: &TestabilityAnalysis,
) -> String {
    let num = |v: Option<f64>| v.map_or("null".to_owned(), |x| format!("{x:.6}"));
    let mut zone_docs = Vec::new();
    let (mut dead, mut total) = (0usize, 0usize);
    for z in zones.zones() {
        let t = ZoneTestability::gather(z, statics);
        dead += t.constant + t.unobservable;
        total += t.sites;
        let opt = |v: Option<u32>| v.map_or("null".to_owned(), |x| x.to_string());
        zone_docs.push(format!(
            "{{\"name\":\"{}\",\"lambda_fit\":{:.4},\"dc\":{},\"sff\":{},\
             \"sites\":{},\"constant\":{},\"unobservable\":{},\"live\":{},\
             \"co_max\":{},\"seq_max\":{}}}",
            json_escape(&z.name),
            result.zone_totals[z.id.index()].total().0,
            num(result.zone_dc(z.id)),
            num(result.zone_sff(z.id)),
            t.sites,
            t.constant,
            t.unobservable,
            t.live(),
            opt(t.co_max),
            opt(t.seq_max)
        ));
    }
    format!(
        "{{\"design\":\"{}\",\"hft\":{},\"subsystem\":\"{:?}\",\"sff\":{},\"dc\":{},\
         \"sil\":{},\"monitored_outputs\":{},\"dead_sites\":{},\"total_sites\":{},\
         \"zones\":[{}]}}",
        json_escape(netlist.name()),
        result.hft.0,
        result.subsystem,
        num(result.sff()),
        num(result.dc()),
        result
            .sil()
            .map_or("null".to_owned(), |s| s.level().to_string()),
        netlist.outputs().len(),
        dead,
        total,
        zone_docs.join(",")
    )
}

/// Minimal JSON string escaping (mirrors the lint crate's).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The protocol name of a bundled example (the CLI and the serve crate
/// agree on these).
fn example_name(example: ExampleDesign) -> &'static str {
    match example {
        ExampleDesign::Fmem => "fmem",
        ExampleDesign::FmemBaseline => "fmem-baseline",
        ExampleDesign::Mcu => "mcu",
        ExampleDesign::McuSingle => "mcu-single",
    }
}

/// Builds one of the bundled example designs together with its zone
/// classification, for `inject --example`. Delegates to the serve crate's
/// resolver so `inject` and a campaign server build the identical netlist.
fn example_netlist(example: ExampleDesign) -> Result<(Netlist, ExtractConfig), ExitCode> {
    soc_fmea::serve::Example::parse(example_name(example))
        .expect("bundled example names agree")
        .build()
        .map_err(|e| {
            eprintln!("socfmea: {e}");
            ExitCode::FAILURE
        })
}

fn run_inject(opts: &InjectOptions) -> Result<(), ExitCode> {
    let (netlist, config) = match opts.example {
        Some(example) => example_netlist(example)?,
        None => {
            let input = opts.input.as_deref().expect("validated by the parser");
            (load_netlist(input)?, opts.config.clone())
        }
    };
    let zones = extract_zones(&netlist, &config);
    // the serve crate owns the workload generator, so a server job and a
    // local inject of the same (design, seed, cycles) drive identical bits
    let workload = soc_fmea::serve::random_workload(&netlist, opts.seed, opts.cycles);
    let env = EnvironmentBuilder::new(&netlist, &zones, &workload)
        .alarms_matching("alarm")
        .build();
    let profile = OperationalProfile::collect(&env);
    let faults = generate_fault_list(
        &env,
        &profile,
        &FaultListConfig {
            seed: opts.seed,
            ..FaultListConfig::default()
        },
    );
    if faults.is_empty() {
        eprintln!("socfmea: no injectable faults (does the design have sensible zones?)");
        return Err(ExitCode::FAILURE);
    }

    println!(
        "{}: {} gates, {} flip-flops, {} sensible zones",
        netlist.name(),
        netlist.gate_count(),
        netlist.dff_count(),
        zones.len()
    );
    println!(
        "workload `{}`: {} cycles driving {} inputs; fault list: {} faults (seed {:#x})",
        workload.name(),
        workload.len(),
        netlist.inputs().len(),
        faults.len(),
        opts.seed
    );

    // The observer is optional machinery: without --trace-out it still
    // collects metrics (cheap), with it every fault streams a JSONL record
    // through a bounded channel to a writer thread.
    let observer = match &opts.trace_out {
        Some(path) => {
            let sink = TraceSink::to_file(path).map_err(|e| {
                eprintln!("socfmea: cannot create `{path}`: {e}");
                ExitCode::FAILURE
            })?;
            Observer::with_sink(sink)
        }
        None => Observer::new(),
    };

    let campaign = Campaign::new(&env, &faults)
        .threads(opts.threads)
        .seed(opts.seed)
        .engine(opts.engine)
        .checkpoint_interval(opts.checkpoint_interval)
        .collapsing(opts.collapse)
        .pruning(opts.prune)
        .observe(&observer);
    let stats = campaign.stats();
    let reporter = (opts.progress && !opts.quiet).then(|| {
        let stats = Arc::clone(&stats);
        ProgressReporter::start(
            Box::new(StderrRender::default()),
            Duration::from_millis(200),
            move || stats.progress_sample(),
        )
    });
    let result = campaign.run();
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    // The stats line carries wall-clock timing, so it goes to stderr and
    // stdout stays deterministic for a given seed.
    if !opts.quiet {
        eprintln!("{}", stats.summary());
    }

    let analysis = analyze(&faults, &result, &profile);
    println!(
        "\n{:<30} {:>5} {:>5} {:>5} {:>5} {:>9}",
        "zone", "S", "SD", "DD", "DU", "zone DC"
    );
    for m in &analysis.measured {
        let dangerous = m.dangerous_detected + m.dangerous_undetected;
        let dc = if dangerous == 0 {
            "-".to_owned()
        } else {
            format!(
                "{:.1}%",
                100.0 * m.dangerous_detected as f64 / dangerous as f64
            )
        };
        println!(
            "{:<30} {:>5} {:>5} {:>5} {:>5} {:>9}",
            zones.zone(m.zone).name,
            m.safe - m.safe_detected,
            m.safe_detected,
            m.dangerous_detected,
            m.dangerous_undetected,
            dc
        );
    }
    let fmt = |v: Option<f64>| match v {
        Some(x) => format!("{:.2}%", x * 100.0),
        None => "n/a (no dangerous outcomes)".to_owned(),
    };
    println!("\nmeasured DC  = {}", fmt(result.measured_dc()));
    println!("measured SFF = {}", fmt(result.measured_sff()));
    println!("{}", result.coverage);

    if let Some(path) = &opts.metrics_out {
        let mut json = observer.metrics_snapshot().render_json();
        json.push('\n');
        std::fs::write(path, json).map_err(|e| {
            eprintln!("socfmea: cannot write `{path}`: {e}");
            ExitCode::FAILURE
        })?;
    }
    observer.finish().map_err(|e| {
        eprintln!("socfmea: trace write failed: {e}");
        ExitCode::FAILURE
    })?;
    Ok(())
}

fn run_serve(opts: &ServeOptions) -> Result<(), ExitCode> {
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        queue_capacity: opts.queue,
        cache_bytes: opts.cache_mb.saturating_mul(1024 * 1024),
        default_threads: cli::default_threads(),
        telemetry: opts.telemetry,
    };
    let server = Server::start(config).map_err(|e| {
        eprintln!("socfmea: cannot listen on `{}`: {e}", opts.addr);
        ExitCode::FAILURE
    })?;
    eprintln!(
        "socfmea serve: listening on {} ({} workers, queue {}, cache {} MiB)",
        server.addr(),
        opts.workers,
        opts.queue,
        opts.cache_mb
    );
    server.join();
    eprintln!("socfmea serve: drained, bye");
    Ok(())
}

/// Maps a client-side transport error to an exit code with a hint naming
/// the server address.
fn transport_err(addr: &str, e: std::io::Error) -> ExitCode {
    eprintln!("socfmea: cannot reach server at `{addr}`: {e}");
    ExitCode::FAILURE
}

fn run_submit(opts: &SubmitOptions) -> Result<(), ExitCode> {
    let design = match opts.example {
        Some(example) => DesignRef::Example(example_name(example).to_owned()),
        None => {
            let input = opts.input.as_deref().expect("validated by the parser");
            let source = std::fs::read_to_string(input).map_err(|e| {
                eprintln!("socfmea: cannot read `{input}`: {e}");
                ExitCode::FAILURE
            })?;
            DesignRef::Verilog(source)
        }
    };
    let spec = JobSpec {
        tenant: opts.tenant.clone(),
        design,
        seed: opts.seed,
        cycles: opts.cycles,
        threads: opts.threads,
        engine: opts.engine,
        checkpoint_interval: opts.checkpoint_interval,
        collapse: opts.collapse,
        prune: opts.prune,
    };
    let client = Client::new(opts.addr.clone());
    let resp = client
        .submit(&spec)
        .map_err(|e| transport_err(&opts.addr, e))?;
    if resp.status != 202 {
        eprintln!(
            "socfmea: submit rejected ({}): {}",
            resp.status,
            resp.text().trim()
        );
        return Err(ExitCode::FAILURE);
    }
    if opts.watch {
        let doc = json::parse(&resp.text()).map_err(|e| {
            eprintln!("socfmea: malformed submit response: {e}");
            ExitCode::FAILURE
        })?;
        let job = doc
            .get("job")
            .and_then(|v| v.as_str().map(str::to_owned))
            .ok_or_else(|| {
                eprintln!("socfmea: submit response names no job");
                ExitCode::FAILURE
            })?;
        watch_to_stdout(&client, &opts.addr, &job)
    } else {
        println!("{}", resp.text().trim());
        Ok(())
    }
}

fn watch_to_stdout(client: &Client, addr: &str, job: &str) -> Result<(), ExitCode> {
    let mut stdout = std::io::stdout().lock();
    let status = client
        .watch(job, &mut stdout)
        .map_err(|e| transport_err(addr, e))?;
    if status != 200 {
        eprintln!("socfmea: watch failed ({status})");
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

/// Shared shape of `status` and `cancel`: one round trip, body to stdout,
/// non-200 exits nonzero.
fn run_job_query(
    opts: &JobRefOptions,
    call: impl Fn(&Client, &str) -> std::io::Result<soc_fmea::serve::http::ClientResponse>,
) -> Result<(), ExitCode> {
    let client = Client::new(opts.addr.clone());
    let resp = call(&client, &opts.job).map_err(|e| transport_err(&opts.addr, e))?;
    if resp.status != 200 {
        eprintln!("socfmea: ({}) {}", resp.status, resp.text().trim());
        return Err(ExitCode::FAILURE);
    }
    println!("{}", resp.text().trim());
    Ok(())
}

fn run_watch(opts: &JobRefOptions) -> Result<(), ExitCode> {
    let client = Client::new(opts.addr.clone());
    if opts.events {
        let mut stdout = std::io::stdout().lock();
        let status = client
            .events(&opts.job, &mut stdout)
            .map_err(|e| transport_err(&opts.addr, e))?;
        if status != 200 {
            eprintln!("socfmea: watch --events failed ({status})");
            return Err(ExitCode::FAILURE);
        }
        return Ok(());
    }
    watch_to_stdout(&client, &opts.addr, &opts.job)
}

fn run_shutdown(opts: &ShutdownOptions) -> Result<(), ExitCode> {
    let client = Client::new(opts.addr.clone());
    let resp = client
        .shutdown()
        .map_err(|e| transport_err(&opts.addr, e))?;
    if resp.status != 200 {
        eprintln!("socfmea: ({}) {}", resp.status, resp.text().trim());
        return Err(ExitCode::FAILURE);
    }
    println!("{}", resp.text().trim());
    Ok(())
}

fn load_trace(path: &str) -> Result<TraceSummary, ExitCode> {
    TraceSummary::from_file(path).map_err(|e| {
        eprintln!("socfmea: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn run_trace_summarize(opts: &TraceOptions) -> Result<(), ExitCode> {
    let summary = load_trace(&opts.input)?;
    print!("{}", summary.render());
    if let Some(diagnosis) = summary.truncation() {
        if opts.allow_partial {
            eprintln!("socfmea: warning: {}: {diagnosis}", opts.input);
        } else {
            eprintln!(
                "socfmea: {}: {diagnosis} (pass --allow-partial to accept a prefix)",
                opts.input
            );
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}

fn run_trace_flame(opts: &TraceOptions) -> Result<(), ExitCode> {
    let profile = Profile::from_summary(&load_trace(&opts.input)?);
    // stdout is pure folded stacks, pipeable straight into flamegraph
    // tooling; the coverage note rides on stderr
    print!("{}", profile.render_folded());
    match profile.coverage() {
        Some(coverage) => eprintln!(
            "socfmea: {:.1}% of the campaign wall-clock attributed to named spans/phases",
            coverage * 100.0
        ),
        None => eprintln!("socfmea: no end record, so wall-clock coverage is unknown"),
    }
    Ok(())
}

fn run_trace_diff(opts: &TraceDiffOptions) -> Result<(), ExitCode> {
    let a = Profile::from_summary(&load_trace(&opts.a)?);
    let b = Profile::from_summary(&load_trace(&opts.b)?);
    print!("{}", a.diff(&b));
    Ok(())
}

fn run_lint(opts: &LintOptions) -> Result<(), ExitCode> {
    let mut config = LintConfig {
        target_sil: opts.target_sil,
        deny_warnings: opts.deny_warnings,
        ..LintConfig::default()
    };
    for code in &opts.allow {
        config = config.allow(code.clone());
    }
    for code in &opts.deny {
        config = config.deny(code.clone());
    }
    let runner = LintRunner::new(config);

    // The examples carry their own zone classification and worksheet
    // (diagnostic claims included); a netlist file gets default worksheet
    // assumptions, so only the structural pack and the domain checks bite.
    let report = match opts.example {
        Some(ExampleDesign::Fmem) | Some(ExampleDesign::FmemBaseline) => {
            use soc_fmea::memsys::{build_netlist, fmea, MemSysConfig};
            let cfg = if opts.example == Some(ExampleDesign::Fmem) {
                MemSysConfig::hardened()
            } else {
                MemSysConfig::baseline()
            };
            let netlist = build_netlist(&cfg).map_err(|e| {
                eprintln!("socfmea: building example: {e}");
                ExitCode::FAILURE
            })?;
            let zones = extract_zones(&netlist, &fmea::extract_config());
            let worksheet = fmea::build_worksheet(&zones, &cfg);
            runner.run(&netlist, &zones, Some(&worksheet))
        }
        Some(ExampleDesign::Mcu) | Some(ExampleDesign::McuSingle) => {
            use soc_fmea::mcu::{build_mcu, fmea, programs, McuConfig};
            let cfg = if opts.example == Some(ExampleDesign::Mcu) {
                McuConfig::lockstep(programs::checksum_loop())
            } else {
                McuConfig::single(programs::checksum_loop())
            };
            let netlist = build_mcu(&cfg).map_err(|e| {
                eprintln!("socfmea: building example: {e}");
                ExitCode::FAILURE
            })?;
            let zones = extract_zones(&netlist, &fmea::extract_config());
            let worksheet = fmea::build_worksheet(&zones, &cfg);
            runner.run(&netlist, &zones, Some(&worksheet))
        }
        None => {
            let input = opts.input.as_deref().expect("validated by the parser");
            let netlist = load_netlist(input)?;
            let zones = extract_zones(&netlist, &opts.config);
            let worksheet = Worksheet::new(&zones);
            runner.run(&netlist, &zones, Some(&worksheet))
        }
    };

    match opts.format {
        LintFormat::Json => println!("{}", report.render_json()),
        LintFormat::Text => print!("{}", report.render_text()),
    }
    if report.has_errors() {
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("socfmea: {e}");
            return usage();
        }
    };
    let outcome = match &command {
        Command::Zones(o) => run_zones(o),
        Command::Analyze(o) => run_analyze(o),
        Command::Inject(o) => run_inject(o),
        Command::Lint(o) => run_lint(o),
        Command::TraceSummarize(o) => run_trace_summarize(o),
        Command::TraceFlame(o) => run_trace_flame(o),
        Command::TraceDiff(o) => run_trace_diff(o),
        Command::Serve(o) => run_serve(o),
        Command::Submit(o) => run_submit(o),
        Command::Status(o) => run_job_query(o, |c, j| c.status(j)),
        Command::Watch(o) => run_watch(o),
        Command::Cancel(o) => run_job_query(o, |c, j| c.cancel(j)),
        Command::Shutdown(o) => run_shutdown(o),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
