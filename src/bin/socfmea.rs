//! `socfmea` — command-line front end of the SoC-level FMEA flow.
//!
//! ```text
//! socfmea zones   <netlist.v> [options]   list the extracted sensible zones
//! socfmea analyze <netlist.v> [options]   run the FMEA and print the report
//!
//! options:
//!   --class <prefix>=<class>   classify zones under a block-path prefix
//!                              (memory|rom|cpu|bus|io|clock|power)
//!   --hft <n>                  hardware fault tolerance for the SIL grant
//!   --type-a                   assess as a type-A subsystem (default: B)
//!   --format text|csv|srs      report format for `analyze` (default: text)
//! ```
//!
//! The input is the structural Verilog subset documented in
//! [`soc_fmea::netlist::verilog`]; zones get default worksheet assumptions
//! (no diagnostic claims — add those programmatically for real
//! assessments), so the output is the *uncovered* FMEA a safety analysis
//! starts from.

use soc_fmea::fmea::{
    extract_zones, predict_all_effects, report, ExtractConfig, Worksheet, ZoneGraph,
};
use soc_fmea::iec61508::{ComponentClass, Hft, SubsystemType};
use soc_fmea::netlist::parse_verilog;
use std::process::ExitCode;

struct Options {
    command: String,
    input: String,
    config: ExtractConfig,
    hft: Hft,
    subsystem: SubsystemType,
    format: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: socfmea <zones|analyze> <netlist.v> \
         [--class <prefix>=<class>] [--hft <n>] [--type-a] [--format text|csv|srs]"
    );
    ExitCode::from(2)
}

fn parse_class(name: &str) -> Option<ComponentClass> {
    Some(match name {
        "memory" | "ram" => ComponentClass::VariableMemory,
        "rom" | "flash" => ComponentClass::InvariableMemory,
        "cpu" | "processing" => ComponentClass::ProcessingUnit,
        "bus" => ComponentClass::Bus,
        "io" => ComponentClass::InputOutput,
        "clock" => ComponentClass::Clock,
        "power" => ComponentClass::PowerSupply,
        _ => return None,
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing command")?.clone();
    if !matches!(command.as_str(), "zones" | "analyze") {
        return Err(format!("unknown command `{command}`"));
    }
    let input = it.next().ok_or("missing input file")?.clone();
    let mut config = ExtractConfig::default();
    let mut hft = Hft(0);
    let mut subsystem = SubsystemType::B;
    let mut format = "text".to_owned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--class" => {
                let spec = it.next().ok_or("--class needs <prefix>=<class>")?;
                let (prefix, class) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --class spec `{spec}`"))?;
                let class =
                    parse_class(class).ok_or_else(|| format!("unknown class `{class}`"))?;
                config = config.classify(prefix, class);
            }
            "--hft" => {
                let n = it.next().ok_or("--hft needs a number")?;
                hft = Hft(n.parse().map_err(|_| format!("bad HFT `{n}`"))?);
            }
            "--type-a" => subsystem = SubsystemType::A,
            "--format" => {
                format = it.next().ok_or("--format needs a value")?.clone();
                if !matches!(format.as_str(), "text" | "csv" | "srs") {
                    return Err(format!("unknown format `{format}`"));
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        command,
        input,
        config,
        hft,
        subsystem,
        format,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("socfmea: {e}");
            return usage();
        }
    };
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("socfmea: cannot read `{}`: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let netlist = match parse_verilog(&source) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("socfmea: {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let zones = extract_zones(&netlist, &opts.config);

    match opts.command.as_str() {
        "zones" => {
            println!(
                "{}: {} gates, {} flip-flops -> {} sensible zones",
                netlist.name(),
                netlist.gate_count(),
                netlist.dff_count(),
                zones.len()
            );
            for z in zones.zones() {
                println!("  {z}");
            }
            let (unassigned, local, wide) = zones.membership().census();
            println!("cone membership: {local} local, {wide} wide, {unassigned} un-zoned gates");
        }
        "analyze" => {
            let mut ws = Worksheet::new(&zones);
            ws.set_hft(opts.hft);
            ws.set_subsystem(opts.subsystem);
            let result = ws.compute();
            match opts.format.as_str() {
                "csv" => print!("{}", report::render_csv(&result, &zones)),
                "srs" => {
                    let graph = ZoneGraph::build(&netlist, &zones);
                    let effects = predict_all_effects(&graph);
                    print!(
                        "{}",
                        report::render_srs(netlist.name(), &result, &zones, &effects)
                    );
                }
                _ => print!("{}", report::render_text(&result, &zones)),
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
    ExitCode::SUCCESS
}
