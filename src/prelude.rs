//! One-stop imports for the common FMEA + fault-injection flow.
//!
//! The facade modules ([`crate::fmea`], [`crate::faultsim`], …) mirror the
//! workspace layout, which is the right granularity for libraries building
//! on one subsystem — but an application walking the whole paper flow
//! (describe → zone → worksheet → inject → validate) ends up with five
//! `use` blocks. `use soc_fmea::prelude::*;` pulls in just the names that
//! flow needs.
//!
//! ```
//! use soc_fmea::prelude::*;
//!
//! let mut r = RtlBuilder::new("soc");
//! let d = r.input_word("din", 4);
//! let q = r.register("state", &d, None, None);
//! r.output_word("dout", &q);
//! let netlist = r.finish()?;
//!
//! let zones = extract_zones(&netlist, &ExtractConfig::default());
//! let mut ws = Worksheet::new(&zones);
//! let state = zones.zone_by_name("state").unwrap().id;
//! ws.add_diagnostic(state, DiagnosticClaim::at_max(TechniqueId::RamEcc));
//! assert!(ws.compute().sff().unwrap() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// design entry
pub use socfmea_netlist::{parse_verilog, Logic, NetId, Netlist};
pub use socfmea_rtl::RtlBuilder;
pub use socfmea_sim::{assign_bus, Simulator, Workload};

// FMEA worksheet and reports
pub use socfmea_core::{
    extract_zones, predict_all_effects, report, validate, DiagnosticClaim, ExtractConfig,
    ValidationConfig, ValidationReport, Worksheet, ZoneGraph, ZoneId, ZoneSet,
};
pub use socfmea_iec61508::{sil_from_sff, ComponentClass, Hft, SubsystemType, TechniqueId};

// fault-injection campaign
pub use socfmea_faultsim::{
    analyze, generate_fault_list, run_campaign, Campaign, CampaignResult, CampaignStats, Collapse,
    EarlyStop, Engine, EnvironmentBuilder, Fault, FaultListConfig, OperationalProfile,
};

// static safety lints
pub use socfmea_lint::{LintConfig, LintReport, LintRunner};
